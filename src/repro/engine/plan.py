"""Plan lowering: from a resolved sweep to a backend-agnostic IR.

The engine's execution stack is staged — **plan, compile, execute**:

1. :func:`lower` turns a :class:`~repro.engine.spec.SweepSpec` (or an
   explicit scenario list) into an :class:`ExecutionPlan`: the pipeline
   name, the **parameter planes** (sorted grid axes and their value
   lists over the shared base), the **chunk layout**, and the seed
   derivation rule.  Lowering validates everything that can fail
   without running a kernel — unknown pipelines, mixed pipelines,
   invalid chunk sizes — so executors start from a well-formed IR.
2. The pipelines' batch kernels *compile* whatever they need (networks,
   cases, grids) through the unified :mod:`repro.compilecache`.
3. The executors (:func:`repro.engine.run_sweep` and
   :func:`repro.engine.run_sweep_streaming`) walk the plan chunk by
   chunk on any backend.

The plan is deliberately **lazy**: nothing scales with the scenario
count except the arithmetic.  ``scenario(i)`` decodes the ``i``-th grid
point from mixed-radix arithmetic over the axes, and per-scenario seeds
come from :func:`repro.numerics.spawn_seeds_range`, which addresses the
``i``-th spawned child of the master seed directly.  Both are pure
functions of the spec, so every chunk layout, shard assignment and
backend reconstructs *identical* scenarios — the foundation of the
engine's bit-for-bit reproducibility guarantee for stochastic sweeps.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import DomainError
from ..numerics import spawn_seeds_range
from ..telemetry import tracer
from .dtypes import resolve_dtype
from .pipelines import Pipeline, get_pipeline
from .spec import ScenarioSpec, SweepSpec

__all__ = ["Chunk", "ExecutionPlan", "PlanShard", "lower",
           "DEFAULT_CHUNK_SIZE"]

#: Default scenarios per chunk for streaming execution: large enough to
#: amortise per-chunk dispatch and keep vectorised kernels efficient,
#: small enough that a chunk's rows and intermediates stay comfortably
#: in cache/memory.
DEFAULT_CHUNK_SIZE = 8192

SweepLike = Union[SweepSpec, Sequence[ScenarioSpec]]


@dataclass(frozen=True)
class Chunk:
    """One contiguous scenario range ``[start, stop)`` of a plan."""

    index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


class ExecutionPlan:
    """A lowered sweep: what to run, in what chunks, with which seeds.

    Instances are immutable and cheap regardless of scenario count; use
    :func:`lower` to build one.  The executor-facing surface is:

    * :attr:`pipeline` / :attr:`pipeline_name` — the resolved pipeline;
    * :attr:`n_scenarios`, :attr:`n_chunks`, :meth:`chunks` — the chunk
      layout;
    * :meth:`scenario`, :meth:`chunk_scenarios` — lazy scenario
      reconstruction (identical to ``SweepSpec.expand()`` output);
    * :meth:`chunk_items` — the resolved ``(params, seed)`` run items a
      chunk feeds to ``Pipeline.run_batch``;
    * :meth:`cache_key` — the result-cache key of one scenario, folded
      through the pipeline (file-referencing pipelines hash content).
    """

    def __init__(
        self,
        pipeline_name: str,
        *,
        base: Dict[str, Any],
        axes: Tuple[Tuple[str, Tuple[Any, ...]], ...],
        master_seed: Optional[int],
        n_scenarios: int,
        chunk_size: int,
        dtype: str = "float64",
        explicit: Optional[Tuple[ScenarioSpec, ...]] = None,
    ):
        self._pipeline_name = pipeline_name
        self._pipeline = get_pipeline(pipeline_name)
        self._base = dict(base)
        self._axes = axes
        self._master_seed = master_seed
        self._n = int(n_scenarios)
        self._chunk_size = int(chunk_size)
        self._dtype = resolve_dtype(dtype)
        self._explicit = explicit
        self._fingerprint: Optional[str] = None
        # Mixed-radix place values: axis j's digit advances every
        # prod(sizes[j+1:]) scenarios (row-major, matching
        # itertools.product in SweepSpec.expand()).
        strides: List[int] = []
        place = 1
        for _name, values in reversed(axes):
            strides.append(place)
            place *= len(values)
        self._strides = tuple(reversed(strides))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def pipeline_name(self) -> str:
        return self._pipeline_name

    @property
    def pipeline(self) -> Pipeline:
        return self._pipeline

    @property
    def n_scenarios(self) -> int:
        return self._n

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    @property
    def dtype(self) -> str:
        """Parameter-plane dtype kernels run at (``"float64"`` default,
        ``"float32"`` for memory-bound sweeps — tolerance ~1e-5)."""
        return self._dtype

    @property
    def n_chunks(self) -> int:
        return -(-self._n // self._chunk_size) if self._n else 0

    @property
    def axes(self) -> Tuple[str, ...]:
        """Grid axis names in expansion (sorted) order."""
        return tuple(name for name, _values in self._axes)

    @property
    def axis_items(self) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
        """``(name, values)`` pairs in expansion (sorted) order."""
        return self._axes

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        """Per-axis value counts (empty for explicit/gridless plans)."""
        return tuple(len(values) for _name, values in self._axes)

    @property
    def master_seed(self) -> Optional[int]:
        return self._master_seed

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan({self._pipeline_name!r}, "
            f"{self._n} scenarios, {self.n_chunks} chunks of "
            f"<= {self._chunk_size})"
        )

    # ------------------------------------------------------------------ #
    # Chunk layout
    # ------------------------------------------------------------------ #

    def chunk(self, index: int) -> Chunk:
        if not 0 <= index < self.n_chunks:
            raise DomainError(
                f"chunk index {index} out of range [0, {self.n_chunks})"
            )
        start = index * self._chunk_size
        return Chunk(index, start, min(start + self._chunk_size, self._n))

    def chunks(self) -> Iterator[Chunk]:
        """The chunks in scenario order (lazy)."""
        for index in range(self.n_chunks):
            yield self.chunk(index)

    # ------------------------------------------------------------------ #
    # Sharding
    # ------------------------------------------------------------------ #

    def shard(self, index: int, count: int) -> "PlanShard":
        """Shard ``index`` of ``count``: a disjoint chunk range sub-plan.

        The plan's chunks are split into ``count`` contiguous,
        near-equal ranges; shard ``i`` covers chunks
        ``[floor(i*C/count), floor((i+1)*C/count))``.  Because every
        shard keeps the parent's absolute scenario indices and seed
        derivation, ``concat(shard(0, k) .. shard(k-1, k))`` reproduces
        the whole plan's output stream bit for bit — by construction,
        not by convention.  Shards of a plan with fewer chunks than
        ``count`` may be empty.
        """
        if count < 1:
            raise DomainError(f"shard count must be positive, got {count}")
        if not 0 <= index < count:
            raise DomainError(
                f"shard index {index} out of range [0, {count})"
            )
        total = self.n_chunks
        start = (index * total) // count
        stop = ((index + 1) * total) // count
        return PlanShard(self, start, stop, index=index, count=count)

    def shard_chunks(self, start_chunk: int, stop_chunk: int) -> "PlanShard":
        """An arbitrary contiguous chunk range ``[start, stop)`` as a
        sub-plan (what the coordinator uses for retry and resume)."""
        return PlanShard(self, start_chunk, stop_chunk)

    # ------------------------------------------------------------------ #
    # Lazy scenario reconstruction
    # ------------------------------------------------------------------ #

    def scenario(self, index: int) -> ScenarioSpec:
        """The ``index``-th scenario, identical to ``expand()[index]``."""
        if not 0 <= index < self._n:
            raise DomainError(
                f"scenario index {index} out of range [0, {self._n})"
            )
        if self._explicit is not None:
            return self._explicit[index]
        params = dict(self._base)
        for (name, values), stride in zip(self._axes, self._strides):
            params[name] = values[(index // stride) % len(values)]
        seed = spawn_seeds_range(self._master_seed, index, index + 1)[0]
        return ScenarioSpec(self._pipeline_name, params, seed=seed)

    def chunk_scenarios(self, chunk: Chunk) -> List[ScenarioSpec]:
        """All scenarios of ``chunk``, reconstructed lazily."""
        if self._explicit is not None:
            return list(self._explicit[chunk.start:chunk.stop])
        seeds = spawn_seeds_range(self._master_seed, chunk.start, chunk.stop)
        scenarios = []
        for offset, index in enumerate(range(chunk.start, chunk.stop)):
            params = dict(self._base)
            for (name, values), stride in zip(self._axes, self._strides):
                params[name] = values[(index // stride) % len(values)]
            scenarios.append(
                ScenarioSpec(self._pipeline_name, params,
                             seed=seeds[offset])
            )
        return scenarios

    def chunk_items(
        self, scenarios: Sequence[ScenarioSpec]
    ) -> List[Tuple[Dict[str, Any], Optional[int]]]:
        """Resolved ``(params, seed)`` run items for a chunk's scenarios.

        Resolution validates parameter names/values through the
        pipeline, so malformed scenarios fail here — before any pool or
        kernel sees them.
        """
        return [
            (self._pipeline.resolve(scenario.params), scenario.seed)
            for scenario in scenarios
        ]

    # ------------------------------------------------------------------ #
    # Cache keys
    # ------------------------------------------------------------------ #

    def cache_key(self, scenario: ScenarioSpec) -> str:
        """The result-cache key of one scenario (pipeline-folded)."""
        return self._pipeline.cache_key(scenario)

    def cacheable(self, scenario: ScenarioSpec) -> bool:
        """Whether rerunning ``scenario`` would reproduce its result:
        always for deterministic pipelines, otherwise only with a seed."""
        return self._pipeline.deterministic or scenario.seed is not None

    # ------------------------------------------------------------------ #
    # Content anchors (external state folded into fingerprints)
    # ------------------------------------------------------------------ #

    def _content_param_names(self) -> Optional[Tuple[str, ...]]:
        """Parameters whose values reference content outside the spec.

        ``()`` means none: the pipeline's ``cache_key`` is the default
        pure function of the spec, so axis windows already pin every
        input.  ``None`` means *unknown*: the pipeline overrides
        ``cache_key`` — its results depend on external state — without
        declaring :attr:`~repro.engine.pipelines.Pipeline.content_params`,
        so fingerprints must anchor every distinct scenario rather than
        guess which parameter carries the reference.
        """
        declared = tuple(
            getattr(self._pipeline, "content_params", ()) or ()
        )
        if declared:
            return declared
        if type(self._pipeline).cache_key is Pipeline.cache_key:
            return ()
        return None

    def _grid_anchor_keys(
        self, blocks: Sequence[Tuple[int, int]]
    ) -> List[str]:
        """Pipeline-folded cache keys anchoring a grid region's content.

        One key per combination the region takes of the
        content-referencing axes (row-major window order), so *every*
        referenced file inside the region is hashed — a single
        first-scenario anchor would miss edits to the other files when
        a content parameter (e.g. ``case_file``) is itself a grid axis.
        Degenerates to one first-scenario key when no content parameter
        varies inside the region.
        """
        first_index = sum(
            offset * stride
            for (offset, _length), stride in zip(blocks, self._strides)
        )
        content = self._content_param_names()
        varying: List[Tuple[int, int]] = []
        if content != ():
            varying = [
                (stride, length)
                for (name, _values), (_offset, length), stride in zip(
                    self._axes, blocks, self._strides
                )
                if length > 1 and (content is None or name in content)
            ]
        if not varying:
            return [self.cache_key(self.scenario(first_index))]
        keys: List[str] = []
        for deltas in itertools.product(
            *(range(length) for _stride, length in varying)
        ):
            index = first_index + sum(
                delta * stride
                for delta, (stride, _length) in zip(deltas, varying)
            )
            keys.append(self.cache_key(self.scenario(index)))
        return keys

    def _range_anchor_keys(self, start: int, length: int) -> List[str]:
        """Content anchor keys for a scenario-range region (explicit or
        gridless plans): one per distinct content-parameter combination
        in the window, first occurrence first."""
        content = self._content_param_names()
        if self._explicit is None or content == () or length == 1:
            return [self.cache_key(self.scenario(start))]
        keys: List[str] = []
        seen = set()
        for index in range(start, start + length):
            scenario = self._explicit[index]
            if content is None:
                marker = scenario.key()
            else:
                marker = json.dumps(
                    [[name, scenario.params.get(name)]
                     for name in content],
                    sort_keys=True, default=str,
                )
            if marker in seen:
                continue
            seen.add(marker)
            keys.append(self.cache_key(scenario))
        return keys

    # ------------------------------------------------------------------ #
    # Identity and pickling
    # ------------------------------------------------------------------ #

    def fingerprint(self) -> str:
        """Content hash identifying the plan's full output stream.

        Folds everything the stream depends on: pipeline name, base
        parameters, axes, master seed, scenario count, chunk layout,
        dtype — plus pipeline-folded content anchor keys, so
        file-referencing pipelines hash the referenced *content* too
        (editing a case file changes the fingerprint).  One anchor per
        distinct value combination of the content-referencing
        parameters: sweeping ``case_file`` as a grid axis hashes every
        file, not just the first scenario's.  Checkpoint manifests
        store this hash; resuming against a different sweep fails
        loudly instead of interleaving streams.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        payload: Dict[str, Any] = {
            "pipeline": self._pipeline_name,
            "base": self._base,
            "axes": [[name, list(values)] for name, values in self._axes],
            "master_seed": self._master_seed,
            "n_scenarios": self._n,
            "chunk_size": self._chunk_size,
            "dtype": self._dtype,
            "explicit": (
                [scenario.key() for scenario in self._explicit]
                if self._explicit is not None else None
            ),
        }
        if self._n:
            if self._explicit is not None or not self._axes:
                anchors = self._range_anchor_keys(0, self._n)
            else:
                anchors = self._grid_anchor_keys(
                    [(0, len(values)) for _name, values in self._axes]
                )
            if len(anchors) == 1:
                payload["scenario0"] = anchors[0]
            else:
                payload["content_anchors"] = anchors
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          default=str)
        self._fingerprint = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        return self._fingerprint

    def region_fingerprint(
        self, blocks: Sequence[Tuple[int, int]]
    ) -> str:
        """Content hash of one axis-aligned region's output rows.

        ``blocks`` gives an ``(offset, length)`` window per grid axis
        (or a single window over scenario indices for explicit/gridless
        plans).  The hash folds exactly what the region's rows depend
        on — pipeline, base parameters, dtype, the *windowed* axis
        values, and pipeline-folded content anchor keys: one cache key
        per distinct combination the region takes of the
        content-referencing parameters (file-referencing pipelines
        declare them via ``content_params``), so every referenced file
        inside the region is hashed even when the file path itself is a
        grid axis.  Seeded sweeps additionally fold the seed window:
        the full grid shape plus the region's offsets, because
        per-scenario seeds are a function of absolute grid position.
        Unseeded deterministic sweeps deliberately do *not* fold
        absolute position, so a region whose parameter values are
        unchanged keeps its fingerprint even when other axes grow or
        shrink around it — the content-addressing that lets
        delta-sweeps skip it.
        """
        payload: Dict[str, Any] = {
            "pipeline": self._pipeline_name,
            "base": self._base,
            "dtype": self._dtype,
        }
        if self._explicit is not None or not self._axes:
            if len(blocks) != 1:
                raise DomainError(
                    f"plans without grid axes take one (start, length) "
                    f"scenario window, got {len(blocks)} blocks"
                )
            start, length = blocks[0]
            if not (0 <= start and length >= 1
                    and start + length <= self._n):
                raise DomainError(
                    f"scenario window ({start}, {length}) outside "
                    f"[0, {self._n})"
                )
            if self._explicit is not None:
                payload["scenarios"] = [
                    scenario.key()
                    for scenario in self._explicit[start:start + length]
                ]
            else:
                payload["window"] = [start, length]
            anchors = self._range_anchor_keys(start, length)
        else:
            if len(blocks) != len(self._axes):
                raise DomainError(
                    f"expected {len(self._axes)} (offset, length) blocks "
                    f"(one per axis), got {len(blocks)}"
                )
            axes_payload = []
            for (name, values), (offset, length) in zip(
                self._axes, blocks
            ):
                if not (0 <= offset and length >= 1
                        and offset + length <= len(values)):
                    raise DomainError(
                        f"block ({offset}, {length}) outside axis "
                        f"{name!r} of length {len(values)}"
                    )
                axes_payload.append(
                    [name, list(values[offset:offset + length])]
                )
            payload["axes"] = axes_payload
            if self._master_seed is not None:
                payload["seed_window"] = {
                    "master_seed": self._master_seed,
                    "grid_shape": list(self.grid_shape),
                    "offsets": [offset for offset, _length in blocks],
                }
            anchors = self._grid_anchor_keys(blocks)
        if len(anchors) == 1:
            payload["anchor"] = anchors[0]
        else:
            payload["anchors"] = anchors
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __getstate__(self) -> Dict[str, Any]:
        # The resolved Pipeline holds registry callables that may not
        # pickle; ship the name and re-resolve on the other side.
        state = self.__dict__.copy()
        state["_pipeline"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._pipeline = get_pipeline(self._pipeline_name)


class PlanShard(ExecutionPlan):
    """A contiguous chunk range of a parent plan, itself runnable.

    Chunk and scenario indices stay **absolute** (the parent's), so a
    shard's chunks carry their own ``spawn_seeds_range`` window: seeds,
    grid decode and cache keys are exactly what the parent would
    produce for those indices, on any backend.  :attr:`n_chunks` /
    :meth:`chunk` are re-based so executors can walk a shard like any
    plan; :attr:`parent_fingerprint` ties it back to the whole stream.
    """

    def __init__(self, parent: ExecutionPlan, start_chunk: int,
                 stop_chunk: int, index: Optional[int] = None,
                 count: Optional[int] = None):
        if isinstance(parent, PlanShard):
            raise DomainError(
                "cannot shard a shard; shard the parent plan instead"
            )
        if not 0 <= start_chunk <= stop_chunk <= parent.n_chunks:
            raise DomainError(
                f"shard chunk range [{start_chunk}, {stop_chunk}) outside "
                f"the plan's [0, {parent.n_chunks})"
            )
        super().__init__(
            parent.pipeline_name,
            base=parent._base,
            axes=parent._axes,
            master_seed=parent._master_seed,
            n_scenarios=parent._n,
            chunk_size=parent._chunk_size,
            dtype=parent._dtype,
            explicit=parent._explicit,
        )
        self._start_chunk = int(start_chunk)
        self._stop_chunk = int(stop_chunk)
        self._shard_index = index
        self._shard_count = count
        self._parent_fingerprint = parent.fingerprint()

    @property
    def start_chunk(self) -> int:
        """First parent chunk index covered (inclusive)."""
        return self._start_chunk

    @property
    def stop_chunk(self) -> int:
        """Last parent chunk index covered (exclusive)."""
        return self._stop_chunk

    @property
    def shard_index(self) -> Optional[int]:
        return self._shard_index

    @property
    def shard_count(self) -> Optional[int]:
        return self._shard_count

    @property
    def parent_fingerprint(self) -> str:
        """The parent plan's :meth:`~ExecutionPlan.fingerprint`."""
        return self._parent_fingerprint

    @property
    def start(self) -> int:
        """First absolute scenario index covered (inclusive)."""
        return min(self._start_chunk * self._chunk_size, self._n)

    @property
    def stop(self) -> int:
        """Last absolute scenario index covered (exclusive)."""
        return min(self._stop_chunk * self._chunk_size, self._n)

    @property
    def n_scenarios(self) -> int:
        return self.stop - self.start

    @property
    def n_chunks(self) -> int:
        return self._stop_chunk - self._start_chunk

    def chunk(self, index: int) -> Chunk:
        """The shard's ``index``-th chunk, in parent coordinates."""
        if not 0 <= index < self.n_chunks:
            raise DomainError(
                f"chunk index {index} out of range [0, {self.n_chunks})"
            )
        absolute = self._start_chunk + index
        start = absolute * self._chunk_size
        return Chunk(absolute, start,
                     min(start + self._chunk_size, self._n))

    def __repr__(self) -> str:
        label = (
            f" (shard {self._shard_index}/{self._shard_count})"
            if self._shard_index is not None else ""
        )
        return (
            f"PlanShard({self._pipeline_name!r}, chunks "
            f"[{self._start_chunk}, {self._stop_chunk}), "
            f"{self.n_scenarios} scenarios{label})"
        )


def _tuned_defaults(pipeline_name: str, n_scenarios: int = 0):
    """(chunk_size, dtype) from the active tuning profile, if any.

    Imported lazily: :mod:`repro.tuning` measures through the executor,
    so a module-level import would be circular.  ``n_scenarios`` keys
    the profile's shape bucket — winners measured at one sweep scale
    don't silently apply orders of magnitude away.
    """
    from ..tuning.profile import tuned_defaults

    return tuned_defaults(pipeline_name, n_scenarios)


def lower(
    sweep: SweepLike,
    chunk_size: Optional[int] = None,
    dtype: Optional[str] = None,
) -> ExecutionPlan:
    """Lower a sweep (or explicit scenario list) to an :class:`ExecutionPlan`.

    ``chunk_size`` defaults to the active tuning profile's measured
    winner for the pipeline (see :mod:`repro.tuning`), falling back to
    :data:`DEFAULT_CHUNK_SIZE`; pass 1 for scenario-at-a-time streaming
    or a larger value to trade memory for kernel efficiency.  ``dtype``
    selects the parameter-plane precision (``"float64"`` bit-exact
    default, ``"float32"`` for memory-bound sweeps at ~1e-5 tolerance);
    like ``chunk_size`` it defaults through the tuning profile.
    Spec-level errors (unknown pipeline, mixed pipelines, bad chunk
    size) surface here, before execution.
    """
    if not isinstance(sweep, SweepSpec):
        sweep = tuple(sweep)
    pipeline_name = (
        sweep.pipeline if isinstance(sweep, SweepSpec)
        else getattr(sweep[0], "pipeline", None) if sweep else None
    )
    n_scenarios = (
        sweep.n_scenarios() if isinstance(sweep, SweepSpec) else len(sweep)
    )
    if chunk_size is None or dtype is None:
        tuned_chunk, tuned_dtype = (
            _tuned_defaults(pipeline_name, n_scenarios)
            if pipeline_name else (None, None)
        )
        if chunk_size is None:
            chunk_size = tuned_chunk
        if dtype is None:
            dtype = tuned_dtype
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise DomainError("chunk_size must be positive")
    dtype = resolve_dtype(dtype)
    with tracer.span("plan.lower") as span:
        if isinstance(sweep, SweepSpec):
            axes = tuple(
                (name, tuple(sweep.grid[name])) for name in sweep.axes
            )
            plan = ExecutionPlan(
                sweep.pipeline,
                base=dict(sweep.base),
                axes=axes,
                master_seed=sweep.seed,
                n_scenarios=sweep.n_scenarios(),
                chunk_size=chunk_size,
                dtype=dtype,
            )
            span.set(pipeline=plan.pipeline_name,
                     n_scenarios=plan.n_scenarios,
                     n_chunks=plan.n_chunks,
                     chunk_size=plan.chunk_size,
                     dtype=plan.dtype)
            return plan
        scenarios = tuple(sweep)
        if not all(isinstance(s, ScenarioSpec) for s in scenarios):
            raise DomainError(
                "sweep must be a SweepSpec or a sequence of ScenarioSpec"
            )
        pipelines = {scenario.pipeline for scenario in scenarios}
        if len(pipelines) > 1:
            raise DomainError(
                f"a sweep must use a single pipeline, got {sorted(pipelines)}"
            )
        if not scenarios:
            raise DomainError(
                "cannot lower an empty scenario list; pass a SweepSpec for "
                "empty sweeps"
            )
        plan = ExecutionPlan(
            next(iter(pipelines)),
            base={},
            axes=(),
            master_seed=None,
            n_scenarios=len(scenarios),
            chunk_size=chunk_size,
            dtype=dtype,
            explicit=scenarios,
        )
        span.set(pipeline=plan.pipeline_name,
                 n_scenarios=plan.n_scenarios,
                 n_chunks=plan.n_chunks,
                 chunk_size=plan.chunk_size,
                 dtype=plan.dtype)
        return plan
