"""Declarative scenario and sweep specifications.

A :class:`ScenarioSpec` names a registered pipeline (see
:mod:`repro.engine.pipelines`) and binds its parameters; a
:class:`SweepSpec` adds a parameter *grid* whose cartesian product expands
into a family of scenarios.  Both round-trip through plain dicts, so specs
can live in YAML/JSON files and travel across process boundaries, and both
have a canonical :meth:`ScenarioSpec.key` used by the result cache.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import DomainError
from ..numerics import spawn_seeds

__all__ = [
    "ScenarioSpec",
    "SweepSpec",
    "canonical_key",
    "load_sweeps",
    "sweeps_from_data",
    "parse_spec_text",
]

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_param_value(name: str, value: Any) -> None:
    if not isinstance(value, _SCALAR_TYPES):
        raise DomainError(
            f"parameter {name!r} must be a scalar (str/int/float/bool/None), "
            f"got {type(value).__name__}"
        )


def canonical_key(pipeline: str, params: Mapping[str, Any],
                  seed: Optional[int] = None) -> str:
    """A stable content hash for (pipeline, params, seed).

    Parameters are serialised in sorted order with full float precision,
    so the key is independent of dict insertion order and identical across
    processes and sessions.
    """
    payload = json.dumps(
        {"pipeline": pipeline, "params": dict(sorted(params.items())),
         "seed": seed},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioSpec:
    """One concrete scenario: a pipeline name plus bound parameters.

    ``seed`` is the scenario's private random seed; deterministic
    pipelines ignore it, stochastic ones (panel simulation, Monte-Carlo
    BBN queries) build their generator from it so the scenario is
    reproducible in isolation and inside any sweep.
    """

    pipeline: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self):
        if not self.pipeline or not isinstance(self.pipeline, str):
            raise DomainError("pipeline must be a non-empty string")
        params = dict(self.params)
        for name, value in params.items():
            _check_param_value(name, value)
        object.__setattr__(self, "params", params)
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))

    def key(self) -> str:
        """Canonical cache key for this scenario."""
        return canonical_key(self.pipeline, self.params, self.seed)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "pipeline": self.pipeline,
            "params": dict(self.params),
        }
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        if "pipeline" not in data:
            raise DomainError("scenario spec needs a 'pipeline' entry")
        return cls(
            pipeline=data["pipeline"],
            params=dict(data.get("params", {})),
            seed=data.get("seed"),
        )

    def with_params(self, **overrides) -> "ScenarioSpec":
        """A copy with some parameters replaced."""
        merged = {**self.params, **overrides}
        return ScenarioSpec(self.pipeline, merged, self.seed)


@dataclass(frozen=True)
class SweepSpec:
    """A family of scenarios: shared ``base`` parameters x a ``grid``.

    ``grid`` maps parameter names to lists of values; :meth:`expand`
    yields the cartesian product in deterministic (sorted-name,
    row-major) order.  An empty grid expands to the single base scenario;
    an empty axis expands to no scenarios at all.  When ``seed`` is set,
    each expanded scenario receives an independent child seed spawned
    from it, so stochastic sweeps are reproducible end to end.
    """

    pipeline: str
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seed: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self):
        if not self.pipeline or not isinstance(self.pipeline, str):
            raise DomainError("pipeline must be a non-empty string")
        base = dict(self.base)
        for key, value in base.items():
            _check_param_value(key, value)
        grid: Dict[str, List[Any]] = {}
        for key, values in dict(self.grid).items():
            if isinstance(values, (str, bytes)) or not isinstance(
                values, (list, tuple)
            ):
                raise DomainError(
                    f"grid axis {key!r} must be a list of values, "
                    f"got {type(values).__name__}"
                )
            for value in values:
                _check_param_value(key, value)
            grid[key] = list(values)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "grid", grid)
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))

    @property
    def axes(self) -> Tuple[str, ...]:
        """Grid parameter names in expansion order."""
        return tuple(sorted(self.grid))

    def n_scenarios(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(self.grid[axis])
        return count

    def expand(self) -> List[ScenarioSpec]:
        """The cartesian product of the grid over the base parameters."""
        axes = self.axes
        value_lists = [self.grid[a] for a in axes]
        combos = list(itertools.product(*value_lists))
        seeds = spawn_seeds(self.seed, len(combos))
        scenarios = []
        for combo, child_seed in zip(combos, seeds):
            params = dict(self.base)
            params.update(zip(axes, combo))
            scenarios.append(
                ScenarioSpec(self.pipeline, params, seed=child_seed)
            )
        return scenarios

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "pipeline": self.pipeline,
            "base": dict(self.base),
            "grid": {k: list(v) for k, v in self.grid.items()},
        }
        if self.seed is not None:
            out["seed"] = self.seed
        if self.name is not None:
            out["name"] = self.name
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        if "pipeline" not in data:
            raise DomainError("sweep spec needs a 'pipeline' entry")
        unknown = set(data) - {"pipeline", "base", "grid", "seed", "name"}
        if unknown:
            raise DomainError(
                f"unknown sweep spec entries: {', '.join(sorted(unknown))}"
            )
        return cls(
            pipeline=data["pipeline"],
            base=dict(data.get("base", {})),
            grid=dict(data.get("grid", {})),
            seed=data.get("seed"),
            name=data.get("name"),
        )

    @classmethod
    def from_file(cls, path) -> "SweepSpec":
        """Load a sweep spec from a YAML or JSON file.

        YAML support is optional (PyYAML); JSON always works, and any
        JSON spec is also valid YAML.
        """
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        data = parse_spec_text(text, str(path))
        if not isinstance(data, Mapping):
            raise DomainError(f"spec file {path} must contain a mapping")
        return cls.from_dict(data)


def load_sweeps(path) -> List[SweepSpec]:
    """Load one *or several* sweep specs from a YAML/JSON file.

    A plain mapping is a single :class:`SweepSpec`; a mapping with a
    top-level ``sweeps:`` list holds many — one spec file can drive
    several pipelines (see ``examples/full_library_sweep.yaml``).  Each
    entry in ``sweeps`` is an ordinary sweep-spec mapping; a top-level
    ``name:`` becomes the default ``name`` of entries that do not set
    their own.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    data = parse_spec_text(text, str(path))
    return sweeps_from_data(data, str(path))


def sweeps_from_data(data, origin: str = "<spec>") -> List[SweepSpec]:
    """The sweep specs in already-parsed spec-file ``data``.

    The body of :func:`load_sweeps` after the file read — callers that
    already hold the parsed mapping (the CLI's ``validate`` subcommand
    sniffs it to tell sweep specs from case specs) reuse it without a
    second parse.
    """
    if not isinstance(data, Mapping):
        raise DomainError(f"spec file {origin} must contain a mapping")
    if "sweeps" not in data:
        return [SweepSpec.from_dict(data)]
    unknown = set(data) - {"sweeps", "name"}
    if unknown:
        raise DomainError(
            f"unknown multi-sweep entries: {', '.join(sorted(unknown))}"
        )
    entries = data["sweeps"]
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise DomainError("'sweeps' must be a list of sweep specs")
    if not entries:
        raise DomainError("'sweeps' must not be empty")
    default_name = data.get("name")
    sweeps = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise DomainError(
                f"sweep entry {position} in {origin} must be a mapping"
            )
        if default_name is not None and entry.get("name") is None:
            entry = {**entry, "name": default_name}
        sweeps.append(SweepSpec.from_dict(entry))
    return sweeps


def parse_spec_text(text: str, origin: str):
    """Parse spec-file text as JSON, falling back to YAML.

    Shared by sweep-spec loading, case-file loading
    (:meth:`repro.arguments.QuantifiedCase.from_file`) and the CLI's
    ``validate`` subcommand, so all structured spec files accept the
    same formats with the same errors.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        pass
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - PyYAML is a test extra
        raise DomainError(
            f"spec file {origin} is not JSON and PyYAML is not installed"
        ) from exc
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise DomainError(f"could not parse spec file {origin}: {exc}") from exc
