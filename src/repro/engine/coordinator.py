"""Sharded, resumable sweep execution across worker processes.

The streaming executor's plans already address any chunk
deterministically — scenario ``i`` is a pure function of the spec
(mixed-radix grid decode) and its seed is the directly-addressed
``i``-th child of the master seed — so distribution is coordination,
not re-derivation.  This module adds that coordination with nothing
beyond the stdlib:

* :func:`run_sweep_sharded` splits a plan into ``k`` disjoint chunk
  ranges (:meth:`~repro.engine.plan.ExecutionPlan.shard`), runs each in
  its own worker **process**, and merges the workers' chunks through
  the ordinary sinks in strict scenario order — output is bit-for-bit
  the single-process stream, just produced in parallel.  Sinks are
  opened with the *whole* plan, so order-sensitive sinks like
  :class:`repro.store.TileSink` work unchanged: shards spill rows, the
  coordinator cuts them into tiles at merge time.
* Worker death (OOM kill, segfault, ``kill -9``) is detected by
  liveness polling and answered with bounded retry: a fresh worker is
  assigned the dead one's *remaining* chunk range.  Pipeline errors,
  by contrast, propagate immediately — they are deterministic and
  would fail again.
* A checkpoint **manifest** (append-only JSONL next to the output
  file) records the plan fingerprint and each completed chunk's row
  count and byte offset.  ``resume=True`` reloads it, truncates the
  output back to the last complete chunk (repairing a torn final line
  via :func:`~repro.engine.sinks.truncate_torn_tail`), and restarts
  the sweep mid-stream — completed chunks are never re-executed, and
  the resumed file is byte-identical to an uninterrupted run because
  JSONL chunk writes are deterministic and chunk-aligned.  A disk
  :class:`~repro.engine.cache.ResultCache` additionally lets restarted
  workers reuse any scenario the killed run had already finished.

Manifest format (one JSON object per line, tolerant of a torn tail)::

    {"kind":"header","version":1,"fingerprint":"<sha256>", ...layout}
    {"kind":"chunk","index":0,"rows":16384,"bytes":1310720}
    {"kind":"chunk","index":1,"rows":16384,"bytes":2621440}
    {"kind":"resume","completed":2,"shards":[[2,31],[31,61]]}
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import queue as queue_module
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compilecache import compile_seconds
from ..errors import DomainError
from ..telemetry import metrics, tracer
from .cache import ResultCache
from .plan import ExecutionPlan, lower
from .sinks import JsonlSink, ResultSink, truncate_torn_tail

__all__ = ["run_sweep_sharded", "SweepManifest", "shard_ranges",
           "MANIFEST_SUFFIX"]

_M_CHUNKS = metrics.counter("coordinator.chunks")
_M_ROWS = metrics.counter("coordinator.rows")
_M_RETRIES = metrics.counter("coordinator.retries")
_M_RESUMED = metrics.counter("coordinator.resumed_chunks")

#: Manifest lives next to the JSONL output: ``rows.jsonl.manifest``.
MANIFEST_SUFFIX = ".manifest"

#: Seconds between liveness checks while waiting on a worker's queue.
_POLL_S = 0.1


def shard_ranges(start: int, stop: int, count: int) -> List[Tuple[int, int]]:
    """Split chunk range ``[start, stop)`` into ``count`` contiguous,
    near-equal, possibly-empty ranges covering it exactly in order."""
    if count < 1:
        raise DomainError(f"shard count must be positive, got {count}")
    span = stop - start
    return [
        (start + (index * span) // count,
         start + ((index + 1) * span) // count)
        for index in range(count)
    ]


class SweepManifest:
    """Append-only JSONL checkpoint of a (sharded) streaming sweep.

    One header line identifies the plan (content fingerprint + chunk
    layout); one line per completed chunk records its row count and the
    output file's byte size after that chunk was flushed.  Loading is
    tolerant of a torn final line — the killed process's last append —
    and :meth:`completed_prefix` only trusts the contiguous prefix, so
    a manifest can never claim more than what is really on disk.
    """

    VERSION = 1

    def __init__(self, path):
        self.path = str(path)
        self.header: Optional[Dict[str, Any]] = None
        self.chunks: Dict[int, Dict[str, Any]] = {}
        self._handle = None

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @classmethod
    def load(cls, path) -> Optional["SweepManifest"]:
        """Parse ``path``; None when missing, empty, or headerless."""
        manifest = cls(path)
        try:
            with open(manifest.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail from a killed writer
                    kind = record.get("kind")
                    if kind == "header":
                        manifest.header = record
                    elif kind == "chunk":
                        manifest.chunks[int(record["index"])] = record
        except OSError:
            return None
        if manifest.header is None:
            return None
        return manifest

    def completed_prefix(self) -> int:
        """Chunks 0..N-1 all recorded complete: the resumable frontier."""
        done = 0
        while done in self.chunks:
            done += 1
        return done

    def chunk_offset(self, completed: int) -> int:
        """Output byte size after ``completed`` chunks (0 for none)."""
        if completed <= 0:
            return 0
        return int(self.chunks[completed - 1]["bytes"])

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def start(self, header: Dict[str, Any], fresh: bool) -> None:
        """Open for appending; ``fresh`` truncates and writes a header."""
        if not fresh:
            # The previous writer may have died mid-append; repair the
            # tail so our first record starts on its own line.
            truncate_torn_tail(self.path)
        try:
            self._handle = open(
                self.path, "w" if fresh else "a", encoding="utf-8"
            )
        except OSError as exc:
            raise DomainError(
                f"cannot open manifest {self.path}: {exc}"
            ) from exc
        if fresh:
            self.header = dict(header, kind="header", version=self.VERSION)
            self.chunks = {}
            self._append(self.header)

    def _append(self, record: Dict[str, Any]) -> None:
        self._handle.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._handle.flush()

    def record_chunk(self, index: int, rows: int, offset: int) -> None:
        record = {"kind": "chunk", "index": index, "rows": rows,
                  "bytes": offset}
        self.chunks[index] = record
        self._append(record)

    def record_resume(self, completed: int,
                      ranges: Sequence[Tuple[int, int]]) -> None:
        self._append({"kind": "resume", "completed": completed,
                      "shards": [list(pair) for pair in ranges]})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


def _shard_worker(plan: ExecutionPlan, start_chunk: int, stop_chunk: int,
                  backend: str, cache_path: Optional[str], part_path: str,
                  out_queue, text_mode: bool) -> None:
    """Run chunks ``[start_chunk, stop_chunk)``, spilling them to disk.

    Each finished chunk's payload — pre-encoded JSONL text in
    ``text_mode`` (so the coordinator appends it verbatim instead of
    re-serialising every row), the raw ``ScenarioResult`` rows
    otherwise — is pickled to ``part_path`` and *flushed* before a tiny
    ``("chunk", absolute_index, n_rows, cache_hits)`` message is
    queued, so every announced chunk is readable.  The disk spill is
    what lets every shard run at full speed while the coordinator
    drains shards in order: backpressure would serialise the sweep,
    and unbounded queues would buffer it in memory.  Ends with
    ``("done", total_rows)``; failures put ``("error", message)``; an
    abrupt death puts nothing, which the coordinator detects by
    liveness polling.
    """
    try:
        from .stream import stream_results

        shard = plan.shard_chunks(start_chunk, stop_chunk)
        cache = ResultCache(path=cache_path) if cache_path else None
        total = 0
        with open(part_path, "wb") as part:
            results_stream = stream_results(
                shard, backend=backend, cache=cache
            )
            for chunk, results in zip(shard.chunks(), results_stream):
                hits = sum(1 for result in results if result.from_cache)
                payload = (
                    JsonlSink.encode(results) if text_mode else results
                )
                pickle.dump(payload, part,
                            protocol=pickle.HIGHEST_PROTOCOL)
                part.flush()
                out_queue.put(("chunk", chunk.index, len(results), hits))
                total += len(results)
        out_queue.put(("done", total))
    except BaseException as exc:  # noqa: BLE001 — surfaced by coordinator
        try:
            out_queue.put(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


class _ShardState:
    """One shard's live bookkeeping inside the coordinator."""

    __slots__ = ("index", "start", "stop", "next_chunk", "process",
                 "queue", "part_path", "part_handle", "retries", "rows",
                 "hits")

    def __init__(self, index: int, start: int, stop: int, part_path: str):
        self.index = index
        self.start = start
        self.stop = stop
        self.next_chunk = start
        self.process = None
        self.queue = None
        self.part_path = part_path
        self.part_handle = None
        self.retries = 0
        self.rows = 0
        self.hits = 0


# --------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------- #


def _checkpoint_sink(sinks: Sequence[ResultSink]) -> Optional[JsonlSink]:
    """The first path-backed JSONL sink — where checkpoints anchor."""
    for sink in sinks:
        if isinstance(sink, JsonlSink) and sink.path is not None:
            return sink
    return None


def run_sweep_sharded(
    sweep,
    shards: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    dtype: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    sinks: Sequence[ResultSink] = (),
    progress=None,
    resume: bool = False,
    manifest_path: Optional[str] = None,
    max_retries: int = 2,
    mp_context: Optional[str] = None,
) -> Dict[str, Any]:
    """Execute a sweep across ``shards`` worker processes, resumably.

    The sharded counterpart of
    :func:`~repro.engine.stream.run_sweep_streaming` (which delegates
    here when called with ``shards=``/``resume=``): same sweep inputs,
    same sinks, same ordered output, same meta summary shape.  Each
    shard runs its chunk range through the ordinary streaming executor
    in a child process; the coordinator drains the shards in order, so
    rows hit the sinks exactly as a single-process run would write
    them.

    With a path-backed :class:`JsonlSink`, every flushed chunk is
    recorded in a manifest next to the output file; ``resume=True``
    restarts a killed sweep from the last complete chunk with
    byte-identical final output.  ``max_retries`` bounds how many times
    a *dying* worker (not a failing pipeline) is replaced before the
    sweep errors out.
    """
    started = time.perf_counter()
    compile_before = compile_seconds()
    if shards < 1:
        raise DomainError(f"shards must be positive, got {shards}")
    if max_retries < 0:
        raise DomainError("max_retries must be >= 0")

    from .stream import _resolve_backend

    if isinstance(sweep, ExecutionPlan):
        if chunk_size is not None and chunk_size != sweep.chunk_size:
            raise DomainError(
                "chunk_size conflicts with the already-lowered plan; "
                "re-lower the sweep instead"
            )
        if dtype is not None and dtype != sweep.dtype:
            raise DomainError(
                "dtype conflicts with the already-lowered plan; "
                "re-lower the sweep instead"
            )
        plan = sweep
        plan_elapsed = 0.0
    else:
        plan = lower(sweep, chunk_size=chunk_size, dtype=dtype)
        plan_elapsed = time.perf_counter() - started

    effective, _ = _resolve_backend(plan, backend)
    # Workers are the parallelism; inside each one, pooled backends
    # would only oversubscribe.  Keep serial explicit, map the rest to
    # the pipeline's fastest in-process backend.
    if effective == "serial" or not plan.pipeline.supports_batch:
        worker_backend = "serial"
    else:
        worker_backend = "vectorized"
    label = f"shards({shards}):{worker_backend}"

    sinks = tuple(sinks)
    checkpoint = _checkpoint_sink(sinks)
    text_mode = bool(sinks) and all(
        isinstance(sink, JsonlSink) for sink in sinks
    )
    if manifest_path is None and checkpoint is not None:
        manifest_path = checkpoint.path + MANIFEST_SUFFIX

    # ------------------------------------------------------------------ #
    # Resume: trust only the manifest's contiguous prefix, capped by
    # what is actually on disk, then truncate the output to that point.
    # ------------------------------------------------------------------ #
    completed = 0
    resumed = False
    resumed_rows = 0
    existing = None
    if resume:
        if checkpoint is None:
            raise DomainError(
                "resume needs a path-backed JsonlSink to checkpoint "
                "against; tile stores get the same crash tolerance "
                "from delta=True instead (finished tiles are skipped "
                "by fingerprint on re-run)"
            )
        if len(sinks) != 1:
            raise DomainError(
                "resume supports exactly one sink (the checkpointed "
                "JSONL output)"
            )
        existing = (
            SweepManifest.load(manifest_path)
            if manifest_path and os.path.exists(manifest_path) else None
        )
    if existing is not None:
        if existing.header.get("fingerprint") != plan.fingerprint():
            raise DomainError(
                f"manifest {manifest_path} was written by a different "
                f"sweep (fingerprint mismatch); delete it to start fresh"
            )
        completed = existing.completed_prefix()
        try:
            size = os.path.getsize(checkpoint.path)
        except OSError:
            size = 0
        # Never truncate *up*: if the output is shorter than the
        # manifest claims (lost writes), fall back to what exists.
        while completed > 0 and existing.chunk_offset(completed) > size:
            completed -= 1
        offset = existing.chunk_offset(completed)
        if os.path.exists(checkpoint.path):
            with open(checkpoint.path, "rb+") as handle:
                handle.truncate(offset)
        else:
            completed = 0
        resumed = completed > 0
        resumed_rows = sum(
            int(existing.chunks[index]["rows"]) for index in range(completed)
        )
        checkpoint.append = resumed

    n_chunks = plan.n_chunks
    completed = min(completed, n_chunks)
    ranges = shard_ranges(completed, n_chunks, shards)
    spill_dir = tempfile.mkdtemp(prefix="repro-shards-")
    states = [
        _ShardState(index, start, stop,
                    os.path.join(spill_dir, f"shard-{index}.part"))
        for index, (start, stop) in enumerate(ranges)
    ]

    manifest: Optional[SweepManifest] = None
    if manifest_path is not None and checkpoint is not None:
        manifest = existing if resumed and existing is not None else (
            SweepManifest(manifest_path)
        )
        manifest.start(
            header={
                "fingerprint": plan.fingerprint(),
                "pipeline": plan.pipeline_name,
                "n_scenarios": plan.n_scenarios,
                "n_chunks": n_chunks,
                "chunk_size": plan.chunk_size,
                "dtype": plan.dtype,
                "n_shards": shards,
                "shards": [list(pair) for pair in ranges],
                "sink": os.path.basename(checkpoint.path),
            },
            fresh=not resumed,
        )
        if resumed:
            manifest.record_resume(completed, ranges)

    cache_path = cache.path if cache is not None else None
    context = multiprocessing.get_context(mp_context)

    def spawn(state: _ShardState) -> None:
        """(Re)start ``state``'s worker over its remaining chunks."""
        state.queue = context.Queue()
        if state.part_handle is not None:
            state.part_handle.close()
        # Pre-create the spill file so the read handle can open before
        # the worker's "wb" open truncates it in place (same inode).
        with open(state.part_path, "ab"):
            pass
        state.part_handle = open(state.part_path, "rb")
        state.process = context.Process(
            target=_shard_worker,
            args=(plan, state.next_chunk, state.stop, worker_backend,
                  cache_path, state.part_path, state.queue, text_mode),
            daemon=True,
            name=f"repro-shard-{state.index}",
        )
        state.process.start()

    from ..tuning.profile import active_profile

    profile = active_profile()
    meta: Dict[str, Any] = {
        "pipeline": plan.pipeline_name,
        "backend": label,
        "n_scenarios": plan.n_scenarios,
        "n_chunks": n_chunks,
        "chunk_size": plan.chunk_size,
        "dtype": plan.dtype,
        "tuned": bool(profile is not None
                      and plan.pipeline_name in profile),
        "shards": shards,
        "resumed": resumed,
        "resumed_chunks": completed,
        "resumed_rows": resumed_rows,
    }
    rows = hits = chunks_done = retries_total = 0
    execute_elapsed = sink_elapsed = 0.0
    opened: List[ResultSink] = []
    try:
        with tracer.span("sweep.sharded", pipeline=plan.pipeline_name,
                         backend=label, shards=shards,
                         n_scenarios=plan.n_scenarios, n_chunks=n_chunks,
                         resumed_chunks=completed) as root_span:
            for sink in sinks:
                sink.open(plan)
                opened.append(sink)
            if resumed:
                _M_RESUMED.add(completed)
                if progress is not None:
                    progress(completed, n_chunks, resumed_rows,
                             plan.n_scenarios)
            for state in states:
                if state.next_chunk < state.stop:
                    spawn(state)
            for state in states:
                with tracer.span("coordinator.shard", shard=state.index,
                                 start_chunk=state.start,
                                 stop_chunk=state.stop) as shard_span:
                    while state.next_chunk < state.stop:
                        wait_start = time.perf_counter()
                        message = None
                        try:
                            message = state.queue.get(timeout=_POLL_S)
                        except queue_module.Empty:
                            pass
                        except (EOFError, OSError):
                            pass  # feeder pipe died with the worker
                        execute_elapsed += (
                            time.perf_counter() - wait_start
                        )
                        if message is None:
                            if (state.process is not None
                                    and not state.process.is_alive()):
                                # Dead producer, drained queue: replace
                                # it for the remaining chunk range.
                                state.retries += 1
                                retries_total += 1
                                _M_RETRIES.add()
                                if state.retries > max_retries:
                                    raise DomainError(
                                        f"shard {state.index} worker died "
                                        f"{state.retries} times (exit code "
                                        f"{state.process.exitcode}) before "
                                        f"chunk {state.next_chunk}; giving "
                                        f"up after {max_retries} retries"
                                    )
                                spawn(state)
                            continue
                        kind = message[0]
                        if kind == "error":
                            raise DomainError(
                                f"shard {state.index} failed: {message[1]}"
                            )
                        if kind == "done":
                            if state.next_chunk < state.stop:
                                # A worker that says done with chunks
                                # missing lost messages: treat as death.
                                state.process.join(timeout=5)
                                continue
                            break
                        _, index, n_rows, chunk_hits = message
                        if index < state.next_chunk:
                            continue  # duplicate after a respawn race
                        if index != state.next_chunk:
                            raise DomainError(
                                f"shard {state.index} emitted chunk "
                                f"{index}, expected {state.next_chunk} — "
                                f"ordered-merge invariant broken"
                            )
                        # The worker flushed this chunk's frame before
                        # announcing it, so the read cannot hit EOF.
                        payload = pickle.load(state.part_handle)
                        write_start = time.perf_counter()
                        for sink in sinks:
                            if text_mode:
                                sink.write_encoded(payload, n_rows)
                            else:
                                sink.write(payload)
                        if manifest is not None:
                            checkpoint.flush()
                            offset = checkpoint.tell()
                            manifest.record_chunk(
                                index, n_rows,
                                offset if offset is not None else -1,
                            )
                        sink_elapsed += time.perf_counter() - write_start
                        state.next_chunk += 1
                        state.rows += n_rows
                        state.hits += chunk_hits
                        rows += n_rows
                        hits += chunk_hits
                        chunks_done += 1
                        _M_CHUNKS.add()
                        _M_ROWS.add(n_rows)
                        if progress is not None:
                            progress(completed + chunks_done, n_chunks,
                                     resumed_rows + rows,
                                     plan.n_scenarios)
                    shard_span.set(rows=state.rows, retries=state.retries,
                                   cache_hits=state.hits)
                if state.process is not None:
                    state.process.join(timeout=5)
            root_span.set(rows=rows, retries=retries_total,
                          cache_hits=hits)
    finally:
        for state in states:
            process = state.process
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5)
            if state.queue is not None:
                state.queue.cancel_join_thread()
                state.queue.close()
            if state.part_handle is not None:
                state.part_handle.close()
        shutil.rmtree(spill_dir, ignore_errors=True)
        for sink in opened:
            sink.close()
        if manifest is not None:
            manifest.close()

    meta["cache_hits"] = hits
    meta["cache_misses"] = rows - hits
    meta["rows"] = rows
    meta["retries"] = retries_total
    meta["elapsed_s"] = time.perf_counter() - started
    meta["stage_timings"] = {
        "plan_s": plan_elapsed,
        # Compile work happens inside the worker processes; the
        # parent-side delta only sees its own (plan fingerprint) work.
        "compile_s": compile_seconds() - compile_before,
        "execute_s": execute_elapsed,
        "sink_s": sink_elapsed,
    }
    return meta
