"""Compiled inference: integer-coded networks, einsum VE, vectorized LW.

:class:`CompiledNetwork` lowers a :class:`~repro.bbn.network.BayesianNetwork`
once into flat numeric form — integer state codes, contiguous CPT ndarrays,
a cached topological order and per-node parent-stride tables — and then
answers queries without touching the name-keyed object layer again:

* **Variable elimination** contracts all factors touching an eliminated
  variable in a single :func:`numpy.einsum` call per elimination step
  (instead of pairwise ``Factor.multiply`` broadcasting), and
  :meth:`probability_of_evidence` eliminates *everything* in one pass
  instead of recursing one evidence variable at a time.  Elimination
  *orders* come from :mod:`repro.bbn.paths` — an opt-einsum-style
  contraction-path search (exhaustive DP on small hidden sets,
  FLOP/memory-scored greedy on wide graphs) memoised per network
  content hash in the ``"bbn.path"`` compile-cache region; the old
  min-degree heuristic survives there as the comparison baseline.
* **Likelihood weighting** forward-samples an ``(n_samples, n_vars)``
  state-code matrix column-by-column in topological order.  Categorical
  draws use the same inverse-CDF ``searchsorted`` construction as
  ``numpy.random.Generator.choice`` against one ``(n_samples, n_free)``
  uniform block, so the vectorized sampler reproduces the retired
  per-sample Python loop draw-for-draw under a shared seed.
* **CPT parameter planes** batch a *family* of networks that share one
  structure but differ in CPT values: :meth:`query_batch`,
  :meth:`probability_of_evidence_batch` and
  :meth:`likelihood_weighting_batch` take a ``{variable: (S, *cpt
  shape)}`` mapping of per-scenario CPT planes and answer all ``S``
  scenarios in one pass, threading a shared batch axis through the
  einsum contractions (or the forward sampler).  Variables without a
  plane reuse the compiled tables.  Scenario ``s`` reproduces the
  corresponding single-network query exactly.

Compilation is cheap but not free, so :func:`compile_network` memoises
compiled networks in the ``"bbn.network"`` region of the unified
:mod:`repro.compilecache`, keyed by
:meth:`BayesianNetwork.content_hash`: a sweep that rebuilds an
identical-content network per scenario compiles it once.

Scale note: einsum caps one contraction at 52 distinct variables
(labels are remapped per call, so total network size is unbounded); the
argument networks this library builds stay far below that.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..compilecache import region as cache_region
from ..errors import DomainError, StructureError
from ..numerics import ensure_rng
from ..telemetry import tracer
from .network import BayesianNetwork
from .paths import find_elimination_order
from .paths import min_degree_order as _min_degree_order  # noqa: F401  (kept
# as the benchmark/test comparison baseline under its historical name)

__all__ = [
    "CompiledNetwork",
    "compile_network",
    "compile_cache_stats",
    "clear_compile_cache",
]

#: A lowered factor: integer variable labels plus a dense value array.
_IntFactor = Tuple[Tuple[int, ...], np.ndarray]

#: A batched factor: labels, values and whether the values carry a
#: leading per-scenario batch axis.
_BatchFactor = Tuple[Tuple[int, ...], np.ndarray, bool]

#: numpy caps einsum at 32 operands; fold long factor lists in chunks.
_EINSUM_CHUNK = 8


class CompiledNetwork:
    """A :class:`BayesianNetwork` lowered to flat integer/ndarray form.

    Construction walks the network once; afterwards every query runs on
    integer codes and contiguous arrays.  Instances are immutable and safe
    to share across threads (each query builds its own factor lists).

    Use :func:`compile_network` rather than the constructor to get
    content-hash memoisation for free.
    """

    def __init__(self, network: BayesianNetwork):
        order = network.topological_order()
        self._names: Tuple[str, ...] = tuple(order)
        self._index: Dict[str, int] = {n: i for i, n in enumerate(order)}
        self._variables = tuple(network.variable(n) for n in order)
        self._cards = np.array(
            [v.cardinality for v in self._variables], dtype=np.int64
        )
        parents: List[np.ndarray] = []
        cpts: List[np.ndarray] = []
        cpt2d: List[np.ndarray] = []
        strides: List[np.ndarray] = []
        for i, name in enumerate(order):
            cpt = network.cpt(name)
            parent_idx = np.array(
                [self._index[p.name] for p in cpt.parents], dtype=np.int64
            )
            values = np.ascontiguousarray(cpt.values)
            parents.append(parent_idx)
            cpts.append(values)
            cpt2d.append(values.reshape(-1, self._cards[i]))
            # C-order strides over the parent axes, so a flat row index is
            # ``codes[parents] @ strides``.
            parent_cards = self._cards[parent_idx]
            stride = np.ones(len(parent_idx), dtype=np.int64)
            if len(parent_idx) > 1:
                stride[:-1] = np.cumprod(parent_cards[::-1])[::-1][1:]
            strides.append(stride)
        self._parents = tuple(parents)
        self._cpts = tuple(cpts)
        self._cpt2d = tuple(cpt2d)
        self._parent_strides = tuple(strides)
        # Keys the shared "bbn.path" region so structurally identical
        # networks reuse one contraction-path search.
        self._content_hash = network.content_hash()
        self._order_cache: Dict[
            Tuple[frozenset, frozenset], Tuple[int, ...]
        ] = {}
        self._codes_cache: Dict[
            Tuple[Tuple[str, str], ...], Dict[int, int]
        ] = {}
        self._order_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n_variables(self) -> int:
        return len(self._names)

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Variable names in the compiled (topological) order."""
        return self._names

    def __repr__(self) -> str:
        return f"CompiledNetwork({self.n_variables} variables)"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(
        self,
        target: str,
        evidence: Optional[Mapping[str, str]] = None,
        order: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """``P(target | evidence)`` as a state -> probability mapping."""
        evidence = dict(evidence or {})
        target_idx = self._variable_index(target)
        target_var = self._variables[target_idx]
        codes = self._evidence_codes(evidence)
        if target_idx in codes:
            clamped = target_var.states[codes[target_idx]]
            return {
                state: 1.0 if state == clamped else 0.0
                for state in target_var.states
            }
        with tracer.span("bbn.query", target=target, n_evidence=len(codes)):
            factors = self._reduced_factors(codes)
            hidden = [
                i for i in range(self.n_variables)
                if i != target_idx and i not in codes
            ]
            for dim in self._elimination_order(hidden, factors, order, codes):
                factors = self._eliminate(factors, dim)
            if not any(target_idx in dims for dims, _ in factors):
                raise StructureError(
                    "target variable vanished during elimination"
                )
            values = _contract(factors, (target_idx,))
        total = float(values.sum())
        if total <= 0:
            raise DomainError(
                f"evidence {evidence} has zero probability under the network"
            )
        return dict(zip(target_var.states, (values / total).tolist()))

    def probability_of_evidence(self, evidence: Mapping[str, str]) -> float:
        """Marginal probability of an evidence assignment.

        One elimination pass over all non-evidence variables — a
        k-variable evidence set costs a single sweep, not k chained
        posterior queries.
        """
        evidence = dict(evidence)
        if not evidence:
            return 1.0
        codes = self._evidence_codes(evidence)
        with tracer.span("bbn.prob_evidence", n_evidence=len(codes)):
            factors = self._reduced_factors(codes)
            hidden = [i for i in range(self.n_variables) if i not in codes]
            for dim in self._elimination_order(hidden, factors, None, codes):
                factors = self._eliminate(factors, dim)
            # Everything is eliminated or reduced, so only scalars remain.
            return float(_contract(factors, ()))

    def likelihood_weighting(
        self,
        target: str,
        evidence: Optional[Mapping[str, str]] = None,
        n_samples: int = 10_000,
        rng: Union[None, int, np.random.Generator] = None,
    ) -> Dict[str, float]:
        """Approximate ``P(target | evidence)`` by likelihood weighting.

        Fully vectorized: one ``(n_samples, n_free)`` uniform block drives
        inverse-CDF categorical draws column-by-column in topological
        order, and evidence likelihoods accumulate as ``(n_samples,)``
        weight arrays.  The uniform block fills row-major, which is
        exactly the order the retired per-sample loop consumed entropy,
        so results are draw-for-draw identical under a shared seed.
        """
        if n_samples < 1:
            raise DomainError("n_samples must be positive")
        evidence = dict(evidence or {})
        target_idx = self._variable_index(target)
        codes = self._evidence_codes(evidence)
        rng = ensure_rng(rng)

        n = self.n_variables
        n_free = n - len(codes)
        with tracer.span("bbn.lw", target=target, n_samples=n_samples):
            with tracer.span("bbn.lw.forward", n_free=n_free):
                uniforms = rng.random((n_samples, n_free)) if n_free else None
                sample_codes = np.empty((n_samples, n), dtype=np.int64)
                weights = np.ones(n_samples)
                free_column = 0
                for i in range(n):
                    parent_idx = self._parents[i]
                    if len(parent_idx):
                        flat = (
                            sample_codes[:, parent_idx]
                            @ self._parent_strides[i]
                        )
                        rows = self._cpt2d[i][flat]
                    else:
                        rows = np.broadcast_to(
                            self._cpt2d[i][0], (n_samples, self._cards[i])
                        )
                    if i in codes:
                        weights = weights * rows[:, codes[i]]
                        sample_codes[:, i] = codes[i]
                    else:
                        # Generator.choice draws one uniform and searchsorts
                        # the normalised cumulative row from the right;
                        # reproduce that bit-for-bit so seeded streams match
                        # the scalar sampler.
                        cdf = np.cumsum(rows, axis=1)
                        cdf = cdf / cdf[:, -1:]
                        u = uniforms[:, free_column]
                        free_column += 1
                        sample_codes[:, i] = np.sum(cdf <= u[:, None], axis=1)

            with tracer.span("bbn.lw.reduce"):
                totals = np.bincount(
                    sample_codes[:, target_idx],
                    weights=weights,
                    minlength=self._cards[target_idx],
                )
                # bincount and cumsum both accumulate sequentially in sample
                # order, which keeps the result bit-identical to the retired
                # loop.
                total_weight = (
                    float(np.cumsum(weights)[-1]) if len(weights) else 0.0
                )
        if total_weight <= 0:
            raise DomainError(
                "all samples had zero weight; evidence may be impossible"
            )
        states = self._variables[target_idx].states
        return dict(zip(states, (totals / total_weight).tolist()))

    # ------------------------------------------------------------------ #
    # Batched queries over CPT parameter planes
    # ------------------------------------------------------------------ #

    def query_batch(
        self,
        target: str,
        evidence: Optional[Mapping[str, str]] = None,
        cpt_planes: Optional[Mapping[str, np.ndarray]] = None,
        order: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """``P(target | evidence)`` for ``S`` parameter scenarios at once.

        ``cpt_planes`` maps variable names to ``(S, *cpt shape)`` arrays
        of per-scenario CPT values; variables without a plane reuse the
        compiled tables.  Returns an ``(S, cardinality)`` array whose row
        ``s`` equals :meth:`query` on the network with scenario ``s``'s
        CPT values substituted.  The network *structure* (variables,
        states, parent sets) is shared across the batch — that is what
        makes one elimination pass serve every scenario.  ``order``
        overrides the searched elimination order, exactly as in
        :meth:`query`.
        """
        evidence = dict(evidence or {})
        planes, n_scenarios = self._check_planes(cpt_planes)
        target_idx = self._variable_index(target)
        target_var = self._variables[target_idx]
        codes = self._evidence_codes(evidence)
        if target_idx in codes:
            row = np.zeros(target_var.cardinality)
            row[codes[target_idx]] = 1.0
            return np.tile(row, (n_scenarios, 1))
        with tracer.span("bbn.query_batch", target=target,
                         n_scenarios=n_scenarios):
            factors = self._reduced_factors_batch(codes, planes)
            hidden = [
                i for i in range(self.n_variables)
                if i != target_idx and i not in codes
            ]
            scopes = [(dims, values) for dims, values, _ in factors]
            for dim in self._elimination_order(hidden, scopes, order, codes):
                factors = self._eliminate_batch(factors, dim)
            values = _contract_batch(factors, (target_idx,), n_scenarios)
        totals = values.sum(axis=1)
        if np.any(totals <= 0):
            raise DomainError(
                f"evidence {evidence} has zero probability under the "
                f"network for at least one scenario"
            )
        return values / totals[:, None]

    def probability_of_evidence_batch(
        self,
        evidence: Mapping[str, str],
        cpt_planes: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Marginal evidence probability per scenario — ``(S,)`` array.

        The batched counterpart of :meth:`probability_of_evidence`: one
        elimination pass with a shared batch axis answers all scenarios.
        """
        evidence = dict(evidence)
        planes, n_scenarios = self._check_planes(cpt_planes)
        if not evidence:
            return np.ones(n_scenarios)
        codes = self._evidence_codes(evidence)
        with tracer.span("bbn.prob_evidence_batch", n_evidence=len(codes),
                         n_scenarios=n_scenarios):
            factors = self._reduced_factors_batch(codes, planes)
            hidden = [i for i in range(self.n_variables) if i not in codes]
            scopes = [(dims, values) for dims, values, _ in factors]
            for dim in self._elimination_order(hidden, scopes, None, codes):
                factors = self._eliminate_batch(factors, dim)
            return _contract_batch(factors, (), n_scenarios)

    def likelihood_weighting_batch(
        self,
        target: str,
        evidence: Optional[Mapping[str, str]] = None,
        n_samples: int = 10_000,
        rngs: Optional[Sequence[Union[None, int, np.random.Generator]]] = None,
        cpt_planes: Optional[Mapping[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Likelihood weighting for ``S`` parameter scenarios in one pass.

        Each scenario keeps its *own* random stream: ``rngs[s]`` seeds
        the ``(n_samples, n_free)`` uniform block for scenario ``s``
        exactly as :meth:`likelihood_weighting` would, so row ``s`` of
        the returned ``(S, cardinality)`` array is bit-for-bit the
        single-scenario result under the same seed — while the forward
        sampling itself runs as ``(S, n_samples)`` array passes.

        The forward pass honours the engine's
        :mod:`~repro.engine.dtypes` policy: under ``float32`` the
        uniform block and sample weights — the sampling path's two
        big ``(S, n_samples)``-scale arrays — are held at single
        precision, halving peak memory.  The random *stream* stays the
        float64 generator output (narrowed on store, so the drawn
        sequence is unchanged) and the weight reduction accumulates in
        float64, keeping float32 results within the policy's
        documented ~1e-5 of the bit-exact float64 default.
        """
        if n_samples < 1:
            raise DomainError("n_samples must be positive")
        evidence = dict(evidence or {})
        planes, n_scenarios = self._check_planes(cpt_planes)
        target_idx = self._variable_index(target)
        codes = self._evidence_codes(evidence)
        if rngs is None:
            rngs = [None] * n_scenarios
        if len(rngs) != n_scenarios:
            raise DomainError(
                f"need one rng per scenario: got {len(rngs)} rngs for "
                f"{n_scenarios} scenarios"
            )
        generators = [ensure_rng(rng) for rng in rngs]

        # Imported lazily: the engine package imports the pipelines
        # (and through them this module) while initialising.
        from ..engine.dtypes import parameter_dtype

        sample_dtype = np.dtype(parameter_dtype())

        n = self.n_variables
        n_free = n - len(codes)
        with tracer.span("bbn.lw_batch", target=target, n_samples=n_samples,
                         n_scenarios=n_scenarios,
                         dtype=sample_dtype.name):
            with tracer.span("bbn.lw.forward", n_free=n_free):
                uniforms = None
                if n_free:
                    # Draw per scenario at float64 (the stream is part
                    # of the reproducibility contract), narrowing into
                    # a policy-dtype block: peak extra memory is one
                    # scenario's draw, not the whole (S, n, f) stack.
                    uniforms = np.empty(
                        (n_scenarios, n_samples, n_free), dtype=sample_dtype
                    )
                    for row, generator in enumerate(generators):
                        uniforms[row] = generator.random(
                            (n_samples, n_free)
                        )
                plane2d = {
                    i: plane.reshape(n_scenarios, -1, self._cards[i])
                    for i, plane in planes.items()
                }
                scenario_rows = np.arange(n_scenarios)[:, None]
                sample_codes = np.empty(
                    (n_scenarios, n_samples, n), dtype=np.int64
                )
                weights = np.ones(
                    (n_scenarios, n_samples), dtype=sample_dtype
                )
                free_column = 0
                for i in range(n):
                    parent_idx = self._parents[i]
                    if len(parent_idx):
                        flat = (
                            sample_codes[:, :, parent_idx]
                            @ self._parent_strides[i]
                        )
                        if i in plane2d:
                            rows = plane2d[i][scenario_rows, flat]
                        else:
                            rows = self._cpt2d[i][flat]
                    else:
                        shape = (n_scenarios, n_samples, int(self._cards[i]))
                        if i in plane2d:
                            rows = np.broadcast_to(
                                plane2d[i][:, 0, None, :], shape
                            )
                        else:
                            rows = np.broadcast_to(self._cpt2d[i][0], shape)
                    if i in codes:
                        # In place so float64 CPT rows don't upcast a
                        # float32 weight buffer.
                        weights *= rows[:, :, codes[i]]
                        sample_codes[:, :, i] = codes[i]
                    else:
                        cdf = np.cumsum(rows, axis=2)
                        cdf = cdf / cdf[:, :, -1:]
                        u = uniforms[:, :, free_column]
                        free_column += 1
                        sample_codes[:, :, i] = np.sum(
                            cdf <= u[:, :, None], axis=2
                        )

            with tracer.span("bbn.lw.reduce"):
                card = int(self._cards[target_idx])
                flat_codes = (
                    sample_codes[:, :, target_idx]
                    + card * np.arange(n_scenarios)[:, None]
                )
                totals = np.bincount(
                    flat_codes.ravel(),
                    weights=weights.ravel(),
                    minlength=n_scenarios * card,
                ).reshape(n_scenarios, card)
                # cumsum accumulates in sample order, matching the scalar
                # path; the reduction stays float64 (bincount always
                # accumulates in double) whatever the sampling dtype.
                total_weight = np.cumsum(
                    weights, axis=1, dtype=np.float64
                )[:, -1]
        if np.any(total_weight <= 0):
            raise DomainError(
                "all samples had zero weight for at least one scenario; "
                "evidence may be impossible"
            )
        return totals / total_weight[:, None]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_planes(
        self, cpt_planes: Optional[Mapping[str, np.ndarray]]
    ) -> Tuple[Dict[int, np.ndarray], int]:
        """Validate planes against the compiled CPT shapes; infer S."""
        if not cpt_planes:
            raise DomainError(
                "batched queries need at least one CPT parameter plane"
            )
        planes: Dict[int, np.ndarray] = {}
        n_scenarios: Optional[int] = None
        for name in sorted(cpt_planes):
            index = self._variable_index(name)
            plane = np.asarray(cpt_planes[name], dtype=float)
            expected = self._cpts[index].shape
            if plane.ndim != len(expected) + 1 or plane.shape[1:] != expected:
                raise StructureError(
                    f"plane for {name!r} must have shape (S,) + {expected}, "
                    f"got {plane.shape}"
                )
            if n_scenarios is None:
                n_scenarios = plane.shape[0]
            elif plane.shape[0] != n_scenarios:
                raise StructureError(
                    f"CPT planes disagree on scenario count: "
                    f"{plane.shape[0]} vs {n_scenarios}"
                )
            planes[index] = plane
        assert n_scenarios is not None
        return planes, n_scenarios

    def _reduced_factors_batch(
        self, codes: Mapping[int, int], planes: Mapping[int, np.ndarray]
    ) -> List[_BatchFactor]:
        factors: List[_BatchFactor] = []
        for i in range(self.n_variables):
            dims = tuple(self._parents[i]) + (i,)
            batched = i in planes
            values = planes[i] if batched else self._cpts[i]
            if any(d in codes for d in dims):
                indexer = tuple(
                    codes[d] if d in codes else slice(None) for d in dims
                )
                if batched:
                    indexer = (slice(None),) + indexer
                values = values[indexer]
                dims = tuple(d for d in dims if d not in codes)
            factors.append((dims, values, batched))
        return factors

    @staticmethod
    def _eliminate_batch(
        factors: List[_BatchFactor], dim: int
    ) -> List[_BatchFactor]:
        touching = [f for f in factors if dim in f[0]]
        rest = [f for f in factors if dim not in f[0]]
        if not touching:
            return rest
        out_dims: List[int] = []
        for dims, _, _ in touching:
            for d in dims:
                if d != dim and d not in out_dims:
                    out_dims.append(d)
        batched = any(b for _, _, b in touching)
        with tracer.span("bbn.eliminate", var=dim,
                         n_factors=len(touching), batched=batched):
            merged = _einsum_batch(touching, tuple(out_dims), batched)
        rest.append((tuple(out_dims), merged, batched))
        return rest

    def _variable_index(self, name: str) -> int:
        index = self._index.get(name)
        if index is None:
            raise StructureError(f"network has no variable {name!r}")
        return index

    def _evidence_codes(self, evidence: Mapping[str, str]) -> Dict[int, int]:
        """Evidence name/state pairs lowered to index/code pairs.

        Sweeps re-query one compiled network with the same evidence
        thousands of times, so the lookup is memoised per assignment.
        The returned dict is shared — callers treat it as read-only.
        """
        key = tuple(sorted(evidence.items()))
        with self._order_lock:
            cached = self._codes_cache.get(key)
        if cached is not None:
            return cached
        codes: Dict[int, int] = {}
        for name, state in evidence.items():
            index = self._variable_index(name)
            codes[index] = self._variables[index].index_of(state)
        with self._order_lock:
            if len(self._codes_cache) < 256:
                self._codes_cache[key] = codes
        return codes

    def _reduced_factors(self, codes: Mapping[int, int]) -> List[_IntFactor]:
        factors: List[_IntFactor] = []
        for i in range(self.n_variables):
            dims = tuple(self._parents[i]) + (i,)
            values = self._cpts[i]
            if any(d in codes for d in dims):
                indexer = tuple(
                    codes[d] if d in codes else slice(None) for d in dims
                )
                values = values[indexer]
                dims = tuple(d for d in dims if d not in codes)
            factors.append((dims, values))
        return factors

    def _elimination_order(
        self,
        hidden: List[int],
        factors: List[_IntFactor],
        requested: Optional[Sequence[str]],
        codes: Mapping[int, int],
    ) -> Tuple[int, ...]:
        if requested is not None:
            hidden_names = {self._names[i] for i in hidden}
            missing = hidden_names - set(requested)
            if missing:
                raise StructureError(
                    f"elimination order is missing hidden variables {missing}"
                )
            hidden_set = set(hidden)
            return tuple(
                self._variable_index(name)
                for name in requested
                if self._index.get(name) in hidden_set
            )
        # Factor scopes depend only on which variables are clamped, so
        # searched orders are memoised per (hidden-set, evidence-set) on
        # the instance, and per content hash in the shared "bbn.path"
        # region — query-many workloads pay for the path search once,
        # and identical-content networks share results across compiles.
        cache_key = (frozenset(hidden), frozenset(codes))
        with self._order_lock:
            cached = self._order_cache.get(cache_key)
        if cached is not None:
            return cached
        scopes = [dims for dims, _ in factors]
        region_key = (
            f"{self._content_hash}|h:{sorted(hidden)}|e:{sorted(codes)}"
        )
        cards = {i: int(self._cards[i]) for i in range(self.n_variables)}
        result = _path_cache.get_or_create(
            region_key,
            lambda: find_elimination_order(hidden, scopes, cards),
        )
        order = result.order
        with self._order_lock:
            if len(self._order_cache) < 256:
                self._order_cache[cache_key] = order
        return order

    @staticmethod
    def _eliminate(factors: List[_IntFactor], dim: int) -> List[_IntFactor]:
        touching = [f for f in factors if dim in f[0]]
        rest = [f for f in factors if dim not in f[0]]
        if not touching:
            return rest
        out_dims: List[int] = []
        for dims, _ in touching:
            for d in dims:
                if d != dim and d not in out_dims:
                    out_dims.append(d)
        with tracer.span("bbn.eliminate", var=dim, n_factors=len(touching)):
            merged = _contract(touching, tuple(out_dims))
        rest.append((tuple(out_dims), merged))
        return rest


def _contract(factors: List[_IntFactor], out_dims: Tuple[int, ...]) -> np.ndarray:
    """Single-shot einsum product of ``factors`` marginalised to ``out_dims``."""
    if not factors:
        return np.ones(()) if not out_dims else np.ones(0)
    remaining = list(factors)
    while len(remaining) > _EINSUM_CHUNK:
        chunk, remaining = remaining[:_EINSUM_CHUNK], remaining[_EINSUM_CHUNK:]
        keep: List[int] = []
        for dims, _ in chunk:
            for d in dims:
                if d not in keep:
                    keep.append(d)
        remaining.insert(0, (tuple(keep), _einsum(chunk, tuple(keep))))
    return _einsum(remaining, out_dims)


@lru_cache(maxsize=4096)
def _einsum_script(
    dims_list: Tuple[Tuple[int, ...], ...], out_dims: Tuple[int, ...]
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]:
    """Variable-id → compact einsum-label remapping, memoised.

    einsum accepts at most 52 distinct indices, a cap that must bound
    one contraction's scope, not the whole network's variable count —
    so ids are remapped per scope signature.  Elimination steps repeat
    the same signatures on every query, hence the cache (tuples, which
    einsum accepts as sublists, so cached values are immutable).
    """
    labels: Dict[int, int] = {}
    for dims in dims_list:
        for d in dims:
            labels.setdefault(d, len(labels))
    return (
        tuple(tuple(labels[d] for d in dims) for dims in dims_list),
        tuple(labels[d] for d in out_dims),
    )


def _einsum(factors: List[_IntFactor], out_dims: Tuple[int, ...]) -> np.ndarray:
    scripts, out = _einsum_script(
        tuple(dims for dims, _ in factors), out_dims
    )
    operands: List[object] = []
    for (_, values), script in zip(factors, scripts):
        operands.append(values)
        operands.append(script)
    return np.einsum(*operands, out)


def _contract_batch(
    factors: List[_BatchFactor], out_dims: Tuple[int, ...], n_scenarios: int
) -> np.ndarray:
    """Batched :func:`_contract`: product marginalised to ``(S, *out)``.

    Factors whose values carry a leading batch axis share one einsum
    batch label; unbatched factors broadcast across it.  The result
    always carries the batch axis (broadcast when no factor did).
    """
    if not factors:
        shape = (n_scenarios,) + tuple(1 for _ in out_dims)
        return np.ones(shape) if not out_dims else np.ones((n_scenarios, 0))
    remaining = list(factors)
    while len(remaining) > _EINSUM_CHUNK:
        chunk, remaining = remaining[:_EINSUM_CHUNK], remaining[_EINSUM_CHUNK:]
        keep: List[int] = []
        for dims, _, _ in chunk:
            for d in dims:
                if d not in keep:
                    keep.append(d)
        batched = any(b for _, _, b in chunk)
        remaining.insert(
            0, (tuple(keep), _einsum_batch(chunk, tuple(keep), batched),
                batched)
        )
    batched = any(b for _, _, b in remaining)
    values = _einsum_batch(remaining, out_dims, batched)
    if not batched:
        values = np.broadcast_to(
            values, (n_scenarios,) + values.shape
        ).copy()
    return values


def _einsum_batch(
    factors: List[_BatchFactor], out_dims: Tuple[int, ...], out_batched: bool
) -> np.ndarray:
    """One einsum over mixed batched/unbatched factors.

    The batch axis gets its own compact label shared by every batched
    operand (and the output when ``out_batched``); unbatched operands
    simply omit it and broadcast.
    """
    scripts, out = _einsum_batch_script(
        tuple((dims, batched) for dims, _, batched in factors),
        out_dims,
        out_batched,
    )
    operands: List[object] = []
    for (_, values, _), script in zip(factors, scripts):
        operands.append(values)
        operands.append(script)
    return np.einsum(*operands, out)


@lru_cache(maxsize=4096)
def _einsum_batch_script(
    signature: Tuple[Tuple[Tuple[int, ...], bool], ...],
    out_dims: Tuple[int, ...],
    out_batched: bool,
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]:
    """Batched variant of :func:`_einsum_script` (adds the batch label)."""
    labels: Dict[int, int] = {}
    for dims, _ in signature:
        for d in dims:
            labels.setdefault(d, len(labels))
    batch_label = len(labels)
    scripts = tuple(
        ((batch_label,) if batched else ())
        + tuple(labels[d] for d in dims)
        for dims, batched in signature
    )
    out = tuple(labels[d] for d in out_dims)
    return scripts, ((batch_label,) + out if out_batched else out)


# ---------------------------------------------------------------------- #
# Compile cache — regions of the unified repro.compilecache
# ---------------------------------------------------------------------- #

_cache = cache_region("bbn.network", maxsize=512)

#: Elimination orders found by the contraction-path search, keyed by
#: network content hash + hidden/evidence sets.  Orders depend only on
#: structure, so identical-content networks share search results even
#: across separate compilations.
_path_cache = cache_region("bbn.path", maxsize=2048)


def compile_network(network: BayesianNetwork) -> CompiledNetwork:
    """Lower ``network`` to a :class:`CompiledNetwork`, memoised by content.

    The cache key is :meth:`BayesianNetwork.content_hash`, so sweeps that
    rebuild an identical network per scenario (the engine's ``bbn_query``
    pipeline, ``two_leg_posterior`` over repeated parameters) share one
    compilation.  The backing store is the ``"bbn.network"`` region of
    :mod:`repro.compilecache` — LRU-bounded, thread-safe, and visible to
    ``repro-case cache stats``.
    """
    return _cache.get_or_create(
        network.content_hash(), lambda: CompiledNetwork(network)
    )


def compile_cache_stats() -> Dict[str, int]:
    """Entries/hits/misses of the shared network-compile cache region."""
    stats = _cache.stats()
    return {"entries": stats["entries"], "hits": stats["hits"],
            "misses": stats["misses"]}


def clear_compile_cache() -> None:
    """Drop all memoised compilations and reset the hit/miss counters."""
    _cache.clear()
