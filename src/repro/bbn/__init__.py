"""Discrete Bayesian-network engine (substrate for argument confidence).

Hot queries run on the compiled layer (:mod:`repro.bbn.compiled`):
networks are lowered once to integer codes and contiguous CPT arrays, and
both variable elimination (einsum contractions) and likelihood weighting
(vectorized forward sampling) operate on that flat form.  The public
:class:`VariableElimination` / :func:`likelihood_weighting` APIs delegate
there transparently; compile-once/query-many callers can hold a
:func:`compile_network` result directly.
"""

from .compiled import (
    CompiledNetwork,
    clear_compile_cache,
    compile_cache_stats,
    compile_network,
)
from .cpt import CPT, Factor, Variable
from .inference import VariableElimination, enumerate_query, joint_probability
from .network import BayesianNetwork
from .sampling import likelihood_weighting

__all__ = [
    "CPT",
    "Factor",
    "Variable",
    "VariableElimination",
    "enumerate_query",
    "joint_probability",
    "BayesianNetwork",
    "likelihood_weighting",
    "CompiledNetwork",
    "compile_network",
    "compile_cache_stats",
    "clear_compile_cache",
]
