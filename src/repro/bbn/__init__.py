"""Discrete Bayesian-network engine (substrate for argument confidence)."""

from .cpt import CPT, Factor, Variable
from .inference import VariableElimination, enumerate_query, joint_probability
from .network import BayesianNetwork
from .sampling import likelihood_weighting

__all__ = [
    "CPT",
    "Factor",
    "Variable",
    "VariableElimination",
    "enumerate_query",
    "joint_probability",
    "BayesianNetwork",
    "likelihood_weighting",
]
