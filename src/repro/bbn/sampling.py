"""Approximate inference by likelihood weighting.

A Monte-Carlo cross-check for the exact engines and the tool of choice if
argument networks ever grow beyond exact reach.

:func:`likelihood_weighting` keeps its historical signature but runs on
the compiled vectorized sampler (:mod:`repro.bbn.compiled`): the whole
sample matrix is forward-filled column-by-column in topological order and
weights accumulate as arrays, with no Python per-sample loop.  The
vectorized draws consume the seeded stream in exactly the order the old
loop did, so results are draw-for-draw reproducible across the swap.  The
retired loop survives as :func:`_likelihood_weighting_loop` — the oracle
the compiled sampler is tested and benchmarked against.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from ..errors import DomainError
from ..numerics import ensure_rng
from .compiled import compile_network
from .network import BayesianNetwork

__all__ = ["likelihood_weighting"]


def likelihood_weighting(
    network: BayesianNetwork,
    target: str,
    evidence: Optional[Mapping[str, str]] = None,
    n_samples: int = 10_000,
    rng: Union[None, int, np.random.Generator] = None,
) -> Dict[str, float]:
    """Approximate ``P(target | evidence)`` by likelihood weighting.

    Evidence variables are clamped and weighted by their CPT likelihood;
    other variables are forward-sampled in topological order — vectorized
    over all ``n_samples`` at once via the network's compiled form.

    ``rng`` may be a :class:`numpy.random.Generator` threaded in from the
    caller (the reproducible path — sweeps give every scenario its own
    spawned stream) or an integer seed; ``None`` draws fresh OS entropy.
    """
    return compile_network(network).likelihood_weighting(
        target, evidence, n_samples=n_samples, rng=rng
    )


def _likelihood_weighting_loop(
    network: BayesianNetwork,
    target: str,
    evidence: Optional[Mapping[str, str]] = None,
    n_samples: int = 10_000,
    rng: Union[None, int, np.random.Generator] = None,
) -> Dict[str, float]:
    """The retired per-sample Python loop (regression/benchmark oracle)."""
    if n_samples < 1:
        raise DomainError("n_samples must be positive")
    evidence = dict(evidence or {})
    network.validate_evidence(evidence)
    rng = ensure_rng(rng)

    target_var = network.variable(target)
    order = network.topological_order()
    totals = {state: 0.0 for state in target_var.states}
    total_weight = 0.0

    # Pre-fetch CPTs and state tuples to keep the sampling loop tight.
    cpts = {name: network.cpt(name) for name in order}

    for _ in range(n_samples):
        sample: Dict[str, str] = {}
        weight = 1.0
        for name in order:
            cpt = cpts[name]
            parent_states = tuple(sample[p.name] for p in cpt.parents)
            if name in evidence:
                state = evidence[name]
                weight *= cpt.probability(state, parent_states)
            else:
                states = cpt.child.states
                probs = [cpt.probability(s, parent_states) for s in states]
                state = states[rng.choice(len(states), p=probs)]
            sample[name] = state
        totals[sample[target]] += weight
        total_weight += weight

    if total_weight <= 0:
        raise DomainError(
            "all samples had zero weight; evidence may be impossible"
        )
    return {state: value / total_weight for state, value in totals.items()}
