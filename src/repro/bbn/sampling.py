"""Approximate inference by likelihood weighting.

A Monte-Carlo cross-check for the exact engines and the tool of choice if
argument networks ever grow beyond exact reach.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from ..errors import DomainError
from ..numerics import ensure_rng
from .network import BayesianNetwork

__all__ = ["likelihood_weighting"]


def likelihood_weighting(
    network: BayesianNetwork,
    target: str,
    evidence: Optional[Mapping[str, str]] = None,
    n_samples: int = 10_000,
    rng: Union[None, int, np.random.Generator] = None,
) -> Dict[str, float]:
    """Approximate ``P(target | evidence)`` by likelihood weighting.

    Evidence variables are clamped and weighted by their CPT likelihood;
    other variables are forward-sampled in topological order.

    ``rng`` may be a :class:`numpy.random.Generator` threaded in from the
    caller (the reproducible path — sweeps give every scenario its own
    spawned stream) or an integer seed; ``None`` draws fresh OS entropy.
    """
    if n_samples < 1:
        raise DomainError("n_samples must be positive")
    evidence = dict(evidence or {})
    network.validate_evidence(evidence)
    rng = ensure_rng(rng)

    target_var = network.variable(target)
    order = network.topological_order()
    totals = {state: 0.0 for state in target_var.states}
    total_weight = 0.0

    # Pre-fetch CPTs and state tuples to keep the sampling loop tight.
    cpts = {name: network.cpt(name) for name in order}

    for _ in range(n_samples):
        sample: Dict[str, str] = {}
        weight = 1.0
        for name in order:
            cpt = cpts[name]
            parent_states = tuple(sample[p.name] for p in cpt.parents)
            if name in evidence:
                state = evidence[name]
                weight *= cpt.probability(state, parent_states)
            else:
                states = cpt.child.states
                probs = [cpt.probability(s, parent_states) for s in states]
                state = states[rng.choice(len(states), p=probs)]
            sample[name] = state
        totals[sample[target]] += weight
        total_weight += weight

    if total_weight <= 0:
        raise DomainError(
            "all samples had zero weight; evidence may be impossible"
        )
    return {state: value / total_weight for state, value in totals.items()}
