"""Exact inference: variable elimination and brute-force enumeration.

Variable elimination is the workhorse; enumeration exists as an
independent oracle for tests (and is fine for the small argument networks
this library builds).

:class:`VariableElimination` keeps its historical API but delegates to
the compiled einsum engine (:mod:`repro.bbn.compiled`): the network is
lowered once to integer codes and contiguous CPT arrays, and each
elimination step is a single :func:`numpy.einsum` contraction.  The
original pure-Python factor-loop engine survives as
:class:`_LoopVariableElimination` — the regression oracle the compiled
path is tested and benchmarked against.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence


from ..errors import DomainError, StructureError
from .compiled import compile_network
from .cpt import Factor
from .network import BayesianNetwork

__all__ = ["VariableElimination", "enumerate_query", "joint_probability"]


class VariableElimination:
    """Exact posterior queries on a Bayesian network (compiled einsum VE)."""

    def __init__(self, network: BayesianNetwork):
        self._network = network
        self._compiled = None

    def _compile(self):
        # Recompile if the network grew since the last query; added nodes
        # are the only mutation BayesianNetwork allows.
        if (
            self._compiled is None
            or self._compiled.n_variables != len(self._network)
        ):
            self._compiled = compile_network(self._network)
        return self._compiled

    def query(
        self,
        target: str,
        evidence: Optional[Mapping[str, str]] = None,
        order: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """``P(target | evidence)`` as a state -> probability mapping."""
        return self._compile().query(target, evidence, order)

    def probability_of_evidence(self, evidence: Mapping[str, str]) -> float:
        """Marginal probability of an evidence assignment (one VE pass)."""
        return self._compile().probability_of_evidence(evidence)


class _LoopVariableElimination:
    """The retired pure-Python engine: pairwise ``Factor.multiply`` VE and
    a per-evidence-variable recursive ``probability_of_evidence``.

    Kept (unexported) as the independent oracle for regression tests and
    as the pre-compilation baseline the P6 benchmark measures against.
    """

    def __init__(self, network: BayesianNetwork):
        self._network = network

    def query(
        self,
        target: str,
        evidence: Optional[Mapping[str, str]] = None,
        order: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """``P(target | evidence)`` as a state -> probability mapping."""
        evidence = dict(evidence or {})
        net = self._network
        target_var = net.variable(target)
        net.validate_evidence(evidence)
        if target in evidence:
            return {
                state: 1.0 if state == evidence[target] else 0.0
                for state in target_var.states
            }

        factors = self._reduced_factors(evidence)
        hidden = [
            name
            for name in net.variable_names
            if name != target and name not in evidence
        ]
        for name in self._elimination_order(hidden, factors, order):
            factors = self._eliminate(factors, name)
        # Multiply all remaining factors; non-scalar ones mention only the
        # target, scalars fold into a common weight that normalises away.
        product = None
        scalar_product = 1.0
        for factor in factors:
            if factor.is_scalar():
                scalar_product *= factor.scalar_value()
            else:
                product = factor if product is None else product.multiply(factor)
        if product is None:
            raise StructureError("target variable vanished during elimination")
        values = product.values * scalar_product
        total = values.sum()
        if total <= 0:
            raise DomainError(
                f"evidence {evidence} has zero probability under the network"
            )
        values = values / total
        return dict(zip(target_var.states, values.tolist()))

    def probability_of_evidence(self, evidence: Mapping[str, str]) -> float:
        """Marginal probability of an evidence assignment."""
        evidence = dict(evidence)
        if not evidence:
            return 1.0
        net = self._network
        net.validate_evidence(evidence)
        anchor = next(iter(evidence))
        remaining = {k: v for k, v in evidence.items() if k != anchor}
        posterior = self.query(anchor, remaining)
        prior_of_rest = self.probability_of_evidence(remaining)
        return posterior[evidence[anchor]] * prior_of_rest

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _reduced_factors(self, evidence: Mapping[str, str]) -> List[Factor]:
        factors = []
        for factor in self._network.factors():
            for name, state in evidence.items():
                if name in factor.names:
                    factor = factor.reduce(name, state)
            factors.append(factor)
        return factors

    @staticmethod
    def _elimination_order(
        hidden: List[str],
        factors: List[Factor],
        requested: Optional[Sequence[str]],
    ) -> List[str]:
        if requested is not None:
            missing = set(hidden) - set(requested)
            if missing:
                raise StructureError(
                    f"elimination order is missing hidden variables {missing}"
                )
            return [name for name in requested if name in hidden]
        # Min-degree greedy heuristic on the factor interaction graph.
        order = []
        remaining = set(hidden)
        scopes = [set(f.names) for f in factors if not f.is_scalar()]
        while remaining:
            def degree(name: str) -> int:
                neighbours = set()
                for scope in scopes:
                    if name in scope:
                        neighbours |= scope
                neighbours.discard(name)
                return len(neighbours)

            best = min(sorted(remaining), key=degree)
            order.append(best)
            remaining.discard(best)
            merged = set()
            kept = []
            for scope in scopes:
                if best in scope:
                    merged |= scope
                else:
                    kept.append(scope)
            merged.discard(best)
            if merged:
                kept.append(merged)
            scopes = kept
        return order

    @staticmethod
    def _eliminate(factors: List[Factor], name: str) -> List[Factor]:
        touching = [f for f in factors if name in f.names]
        rest = [f for f in factors if name not in f.names]
        if not touching:
            return rest
        product = touching[0]
        for factor in touching[1:]:
            product = product.multiply(factor)
        if product.names == (name,):
            # Marginalising the only variable yields a scalar.
            rest.append(Factor._scalar(product.total()))
            return rest
        rest.append(product.marginalise(name))
        return rest


def joint_probability(
    network: BayesianNetwork, assignment: Mapping[str, str]
) -> float:
    """Probability of a *complete* assignment (chain rule)."""
    if set(assignment) != set(network.variable_names):
        raise StructureError("assignment must cover every variable exactly")
    prob = 1.0
    for name in network.topological_order():
        cpt = network.cpt(name)
        parent_states = tuple(assignment[p.name] for p in cpt.parents)
        prob *= cpt.probability(assignment[name], parent_states)
    return prob


def enumerate_query(
    network: BayesianNetwork,
    target: str,
    evidence: Optional[Mapping[str, str]] = None,
) -> Dict[str, float]:
    """Brute-force posterior by full joint enumeration (test oracle)."""
    evidence = dict(evidence or {})
    network.validate_evidence(evidence)
    target_var = network.variable(target)
    if target in evidence:
        return {
            state: 1.0 if state == evidence[target] else 0.0
            for state in target_var.states
        }
    names = network.variable_names
    free = [n for n in names if n not in evidence]
    totals = {state: 0.0 for state in target_var.states}
    state_spaces = [network.variable(n).states for n in free]
    for combo in itertools.product(*state_spaces):
        assignment = dict(evidence)
        assignment.update(dict(zip(free, combo)))
        totals[assignment[target]] += joint_probability(network, assignment)
    z = sum(totals.values())
    if z <= 0:
        raise DomainError(f"evidence {evidence} has zero probability")
    return {state: value / z for state, value in totals.items()}
