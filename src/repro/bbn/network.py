"""Discrete Bayesian network structure.

A :class:`BayesianNetwork` is a DAG of :class:`~repro.bbn.cpt.Variable`
nodes, each with a CPT conditioned on its parents.  Structure validation
(acyclicity, closed parent sets) uses :mod:`networkx`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Tuple

import networkx as nx
import numpy as np

from ..errors import StructureError
from .cpt import CPT, Factor, Variable

__all__ = ["BayesianNetwork"]


class BayesianNetwork:
    """A directed acyclic graph of discrete variables with CPTs."""

    def __init__(self):
        self._cpts: Dict[str, CPT] = {}
        self._variables: Dict[str, Variable] = {}
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add(self, cpt: CPT) -> "BayesianNetwork":
        """Add a variable with its CPT; parents must already be present."""
        child = cpt.child
        if child.name in self._cpts:
            raise StructureError(f"variable {child.name!r} already in network")
        for parent in cpt.parents:
            existing = self._variables.get(parent.name)
            if existing is None:
                raise StructureError(
                    f"parent {parent.name!r} of {child.name!r} not yet added"
                )
            if existing.states != parent.states:
                raise StructureError(
                    f"parent {parent.name!r} state mismatch with network copy"
                )
        self._cpts[child.name] = cpt
        self._variables[child.name] = child
        self._graph.add_node(child.name)
        for parent in cpt.parents:
            self._graph.add_edge(parent.name, child.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            # Roll back the offending addition to keep the network usable.
            self._graph.remove_node(child.name)
            del self._cpts[child.name]
            del self._variables[child.name]
            raise StructureError(
                f"adding {child.name!r} would create a directed cycle"
            )
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def variable_names(self) -> List[str]:
        return sorted(self._variables)

    def variable(self, name: str) -> Variable:
        if name not in self._variables:
            raise StructureError(f"network has no variable {name!r}")
        return self._variables[name]

    def cpt(self, name: str) -> CPT:
        if name not in self._cpts:
            raise StructureError(f"network has no variable {name!r}")
        return self._cpts[name]

    def parents(self, name: str) -> Tuple[str, ...]:
        return tuple(p.name for p in self.cpt(name).parents)

    def topological_order(self) -> List[str]:
        """Variables in a parents-before-children order."""
        return list(nx.topological_sort(self._graph))

    def factors(self) -> List[Factor]:
        """All CPTs as factors."""
        return [cpt.to_factor() for cpt in self._cpts.values()]

    def content_hash(self) -> str:
        """A digest of the full network content (structure + CPT tables).

        Two networks with the same variables, states, parent sets and CPT
        values hash identically, so the hash can key caches of derived
        artefacts (e.g. :func:`repro.bbn.compile_network`'s compile cache).
        """
        digest = hashlib.sha256()
        for name in self.variable_names:
            cpt = self._cpts[name]
            digest.update(name.encode())
            digest.update(b"\x00")
            for state in cpt.child.states:
                digest.update(state.encode())
                digest.update(b"\x1f")
            digest.update(b"\x01")
            for parent in cpt.parents:
                digest.update(parent.name.encode())
                digest.update(b"\x1f")
            digest.update(b"\x02")
            digest.update(np.ascontiguousarray(cpt.values).tobytes())
        return digest.hexdigest()

    def validate_evidence(self, evidence: Mapping[str, str]) -> None:
        """Check evidence names and states exist (raises otherwise)."""
        for name, state in evidence.items():
            self.variable(name).index_of(state)

    def __contains__(self, name: str) -> bool:
        return name in self._variables

    def __len__(self) -> int:
        return len(self._variables)

    def __repr__(self) -> str:
        return (
            f"BayesianNetwork({len(self)} variables, "
            f"{self._graph.number_of_edges()} edges)"
        )
