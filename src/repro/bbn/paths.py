"""Contraction-path search for variable elimination.

Variable elimination's cost is set almost entirely by the *order* in
which hidden variables are contracted away: each elimination multiplies
every factor touching the variable and marginalises it out, so a bad
order materialises huge intermediate factors.  The classic min-degree
heuristic counts neighbours only — it is blind to cardinalities, and a
degree-2 variable wedged between two card-8 hubs looks cheaper than a
degree-3 variable surrounded by booleans even though it costs 30x more
FLOPs to eliminate.

This module searches contraction paths the way ``opt_einsum`` does:

* :func:`optimal_order` — exact dynamic programming over subsets of the
  hidden variables, minimising total contraction FLOPs.  Exponential in
  the hidden count, so it is reserved for small graphs
  (``<=`` :data:`DP_LIMIT` hidden variables — ``2^n * n`` states).
* :func:`greedy_cost_order` — one-step lookahead greedy that scores
  each candidate elimination by FLOPs, tie-broken by the memory of the
  factor it would create.  Near-linear, used for wide graphs.
* :func:`min_degree_order` — the original heuristic, kept as the
  comparison baseline (and for callers that ask for it by name).
* :func:`find_elimination_order` — the front door: picks DP or greedy
  by problem size (``finder="auto"``), or honours an explicit finder.

All finders work on the *factor interaction graph* — variable ids,
factor scopes and per-variable cardinalities — never on factor values,
so an order can be found once and reused for every numeric query with
the same structure.  :mod:`repro.bbn.compiled` memoises results per
network content hash in the ``"bbn.path"`` region of
:mod:`repro.compilecache`.

Only the contraction *order* changes; the per-step einsum machinery is
untouched, and every order yields the same distribution up to float
summation order (agreement is tested to 1e-12 against both min-degree
and brute-force enumeration).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Set, Tuple

from ..errors import DomainError
from ..telemetry import tracer

__all__ = [
    "DEFAULT_PATH_FINDER",
    "DP_LIMIT",
    "PATH_FINDERS",
    "PathSearchResult",
    "find_elimination_order",
    "greedy_cost_order",
    "min_degree_order",
    "optimal_order",
    "order_cost",
]

#: Hidden-variable count up to which exhaustive DP search runs.
DP_LIMIT = 12

#: Recognised finder names for :func:`find_elimination_order`.
PATH_FINDERS = ("auto", "optimal", "greedy_cost", "min_degree")

#: The finder used when callers don't pick one (DP or greedy by size).
DEFAULT_PATH_FINDER = "auto"


class PathSearchResult(NamedTuple):
    """An elimination order plus how it was found and what it costs."""

    order: Tuple[int, ...]
    finder: str
    cost: float


def _adjacency(
    scopes: Sequence[Tuple[int, ...]],
) -> Dict[int, Set[int]]:
    """Interaction graph: every factor scope is a clique."""
    adj: Dict[int, Set[int]] = {}
    for scope in scopes:
        for v in scope:
            adj.setdefault(v, set())
        for v in scope:
            for u in scope:
                if u != v:
                    adj[v].add(u)
    return adj


def _elimination_flops(
    card: Dict[int, float], v: int, neighbours: Set[int]
) -> float:
    """FLOP estimate for summing ``v`` out of its neighbourhood clique."""
    cost = card.get(v, 1.0)
    for u in neighbours:
        cost *= card.get(u, 1.0)
    return cost


def min_degree_order(
    hidden: Sequence[int], scopes: Sequence[Tuple[int, ...]]
) -> Tuple[int, ...]:
    """Greedy min-degree elimination order on the factor interaction graph."""
    order: List[int] = []
    remaining = set(hidden)
    live = [set(scope) for scope in scopes if scope]
    while remaining:
        def degree(dim: int) -> int:
            neighbours: set = set()
            for scope in live:
                if dim in scope:
                    neighbours |= scope
            neighbours.discard(dim)
            return len(neighbours)

        best = min(sorted(remaining), key=degree)
        order.append(best)
        remaining.discard(best)
        merged: set = set()
        kept = []
        for scope in live:
            if best in scope:
                merged |= scope
            else:
                kept.append(scope)
        merged.discard(best)
        if merged:
            kept.append(merged)
        live = kept
    return tuple(order)


def greedy_cost_order(
    hidden: Sequence[int],
    scopes: Sequence[Tuple[int, ...]],
    cards: Dict[int, int],
) -> Tuple[int, ...]:
    """FLOP-and-memory-scored greedy elimination order.

    At every step eliminate the hidden variable whose contraction costs
    the fewest FLOPs (``card(v) * prod(card(neighbours))``); ties break
    on the memory of the factor the elimination would leave behind, then
    on variable id for determinism.
    """
    card = {v: float(c) for v, c in cards.items()}
    adj = _adjacency(scopes)
    order: List[int] = []
    remaining = set(hidden)
    while remaining:
        best = None
        best_score: Tuple[float, float, int] = (float("inf"), float("inf"), 0)
        for v in sorted(remaining):
            neighbours = adj.get(v, set())
            flops = _elimination_flops(card, v, neighbours)
            memory = flops / card.get(v, 1.0)
            score = (flops, memory, v)
            if score < best_score:
                best, best_score = v, score
        assert best is not None
        order.append(best)
        remaining.discard(best)
        neighbours = adj.pop(best, set())
        for u in neighbours:
            adj[u].discard(best)
            adj[u] |= neighbours - {u}
    return tuple(order)


def optimal_order(
    hidden: Sequence[int],
    scopes: Sequence[Tuple[int, ...]],
    cards: Dict[int, int],
) -> Tuple[int, ...]:
    """Exact minimum-FLOP elimination order by DP over hidden subsets.

    State = the set of hidden variables already eliminated; the clique a
    further elimination creates depends only on that set, not on the
    order within it (eliminating ``S`` connects ``v`` to every variable
    reachable through ``S``).  ``O(2^n * n)`` states with a small graph
    walk each — callers gate on :data:`DP_LIMIT`.
    """
    hidden = list(hidden)
    n = len(hidden)
    if n == 0:
        return ()
    if n > DP_LIMIT:
        raise DomainError(
            f"optimal path search is limited to {DP_LIMIT} hidden "
            f"variables, got {n}; use finder='greedy_cost'"
        )
    card = {v: float(c) for v, c in cards.items()}
    adj = _adjacency(scopes)
    bit = {v: 1 << i for i, v in enumerate(hidden)}

    def step_cost(v: int, mask: int) -> float:
        # Neighbours of ``v`` after eliminating ``mask``: every variable
        # reachable from ``v`` through eliminated vertices only.
        neighbours: Set[int] = set()
        seen = {v}
        stack = [v]
        while stack:
            x = stack.pop()
            for u in adj.get(x, ()):  # pragma: no branch
                if u in seen:
                    continue
                seen.add(u)
                if bit.get(u, 0) & mask:
                    stack.append(u)
                else:
                    neighbours.add(u)
        return _elimination_flops(card, v, neighbours)

    size = 1 << n
    best = [float("inf")] * size
    choice = [-1] * size
    best[0] = 0.0
    for mask in range(size):
        base = best[mask]
        if base == float("inf"):
            continue
        for i, v in enumerate(hidden):
            vbit = 1 << i
            if mask & vbit:
                continue
            total = base + step_cost(v, mask)
            nxt = mask | vbit
            if total < best[nxt]:
                best[nxt] = total
                choice[nxt] = i
    order_rev: List[int] = []
    mask = size - 1
    while mask:
        i = choice[mask]
        order_rev.append(hidden[i])
        mask &= ~(1 << i)
    return tuple(reversed(order_rev))


def order_cost(
    order: Sequence[int],
    scopes: Sequence[Tuple[int, ...]],
    cards: Dict[int, int],
) -> float:
    """Total contraction FLOPs of eliminating ``order`` over ``scopes``."""
    card = {v: float(c) for v, c in cards.items()}
    adj = _adjacency(scopes)
    total = 0.0
    for v in order:
        neighbours = adj.pop(v, set())
        total += _elimination_flops(card, v, neighbours)
        for u in neighbours:
            adj[u].discard(v)
            adj[u] |= neighbours - {u}
    return total


def find_elimination_order(
    hidden: Sequence[int],
    scopes: Sequence[Tuple[int, ...]],
    cards: Dict[int, int],
    finder: str = "auto",
) -> PathSearchResult:
    """Search an elimination order for ``hidden`` over factor ``scopes``.

    ``finder="auto"`` runs the exhaustive DP when the hidden set is
    small (``<=`` :data:`DP_LIMIT`) and falls back to the FLOP/memory
    greedy on wide graphs.  Returns the order, the finder that actually
    ran, and the estimated FLOP cost of the order it produced.
    """
    if finder not in PATH_FINDERS:
        raise DomainError(
            f"unknown path finder {finder!r}; expected one of {PATH_FINDERS}"
        )
    resolved = finder
    if finder == "auto":
        resolved = "optimal" if len(hidden) <= DP_LIMIT else "greedy_cost"
    with tracer.span("bbn.path_search", finder=resolved,
                     n_hidden=len(hidden)):
        if resolved == "optimal":
            order = optimal_order(hidden, scopes, cards)
        elif resolved == "greedy_cost":
            order = greedy_cost_order(hidden, scopes, cards)
        else:
            order = min_degree_order(hidden, scopes)
    return PathSearchResult(order, resolved, order_cost(order, scopes, cards))
