"""Discrete variables, factors and conditional probability tables.

The substrate for argument-confidence propagation (:mod:`repro.arguments`):
a small, exact, discrete Bayesian-network toolkit.  Factors are dense
numpy arrays with named axes; CPTs are factors normalised along the child
axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import DomainError, StructureError

__all__ = ["Variable", "Factor", "CPT"]


@dataclass(frozen=True)
class Variable:
    """A named discrete variable with an ordered tuple of states."""

    name: str
    states: Tuple[str, ...]

    def __post_init__(self):
        if not self.name:
            raise DomainError("variable needs a non-empty name")
        if len(self.states) < 2:
            raise DomainError(f"variable {self.name!r} needs at least 2 states")
        if len(set(self.states)) != len(self.states):
            raise DomainError(f"variable {self.name!r} has duplicate states")

    @property
    def cardinality(self) -> int:
        return len(self.states)

    def index_of(self, state: str) -> int:
        """Index of a state name (raises for unknown states)."""
        try:
            return self.states.index(state)
        except ValueError:
            raise DomainError(
                f"variable {self.name!r} has no state {state!r} "
                f"(states: {self.states})"
            ) from None

    @classmethod
    def boolean(cls, name: str) -> "Variable":
        """A true/false variable (state order: true, false)."""
        return cls(name, ("true", "false"))


class Factor:
    """A non-negative function over the product of some variables' states."""

    def __init__(self, variables: Sequence[Variable], values: np.ndarray):
        values = np.asarray(values, dtype=float)
        expected = tuple(v.cardinality for v in variables)
        if values.shape != expected:
            raise StructureError(
                f"factor values shape {values.shape} does not match "
                f"variables {expected}"
            )
        if np.any(values < -1e-15):
            raise DomainError("factor values must be non-negative")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise StructureError(f"duplicate variables in factor: {names}")
        self._variables = tuple(variables)
        self._values = np.clip(values, 0.0, None)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        return self._variables

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self._variables)

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union of the two scopes."""
        merged: List[Variable] = list(self._variables)
        for var in other._variables:
            if var.name not in self.names:
                merged.append(var)
            else:
                mine = merged[self.names.index(var.name)]
                if mine.states != var.states:
                    raise StructureError(
                        f"variable {var.name!r} has mismatched states in the "
                        f"two factors"
                    )
        merged_names = [v.name for v in merged]
        self_view = self._broadcast_to(merged, merged_names)
        other_view = other._broadcast_to(merged, merged_names)
        return Factor(merged, self_view * other_view)

    def _broadcast_to(
        self, merged: Sequence[Variable], merged_names: Sequence[str]
    ) -> np.ndarray:
        # Permute own axes into their order of appearance in the merged
        # scope, then insert singleton axes for the variables this factor
        # lacks and broadcast.
        order = sorted(
            range(len(self.names)),
            key=lambda i: merged_names.index(self.names[i]),
        )
        src = np.transpose(self._values, order)
        shape = [
            v.cardinality if v.name in self.names else 1 for v in merged
        ]
        src = src.reshape(shape)
        return np.broadcast_to(src, tuple(v.cardinality for v in merged))

    def marginalise(self, name: str) -> "Factor":
        """Sum out one variable."""
        if name not in self.names:
            raise StructureError(f"factor has no variable {name!r}")
        axis = self.names.index(name)
        remaining = [v for v in self._variables if v.name != name]
        if not remaining:
            raise StructureError("cannot marginalise the last variable away")
        return Factor(remaining, self._values.sum(axis=axis))

    def reduce(self, name: str, state: str) -> "Factor":
        """Condition on ``name = state`` (drops the axis, keeps the slice)."""
        if name not in self.names:
            raise StructureError(f"factor has no variable {name!r}")
        axis = self.names.index(name)
        var = self._variables[axis]
        idx = var.index_of(state)
        remaining = [v for v in self._variables if v.name != name]
        sliced = np.take(self._values, idx, axis=axis)
        if not remaining:
            # A scalar factor: keep a dummy representation via a 1-state trick
            # is disallowed by Variable, so return the scalar wrapped.
            return Factor._scalar(float(sliced))
        return Factor(remaining, sliced)

    @staticmethod
    def _scalar(value: float) -> "Factor":
        dummy = Variable("__scalar__", ("only", "never"))
        return Factor([dummy], np.array([value, 0.0]))

    def is_scalar(self) -> bool:
        return self.names == ("__scalar__",)

    def scalar_value(self) -> float:
        if not self.is_scalar():
            raise StructureError("factor is not scalar")
        return float(self._values[0])

    def total(self) -> float:
        """Sum over all entries."""
        return float(self._values.sum())

    def normalised(self) -> "Factor":
        """Rescale so entries sum to one."""
        total = self.total()
        if total <= 0:
            raise DomainError("cannot normalise a zero factor")
        return Factor(self._variables, self._values / total)

    def __repr__(self) -> str:
        return f"Factor({', '.join(self.names)})"


class CPT:
    """``P(child | parents)`` as a table.

    ``table`` maps each combination of parent states (a tuple, ordered as
    ``parents``) to a probability vector over the child's states.  A
    root variable uses the empty tuple ``()`` as its single key.
    """

    def __init__(
        self,
        child: Variable,
        parents: Sequence[Variable],
        table: Mapping[Tuple[str, ...], Sequence[float]],
    ):
        self._child = child
        self._parents = tuple(parents)
        parent_names = [p.name for p in self._parents]
        if child.name in parent_names:
            raise StructureError(f"{child.name!r} cannot be its own parent")
        if len(set(parent_names)) != len(parent_names):
            raise StructureError(f"duplicate parents for {child.name!r}")
        shape = tuple(p.cardinality for p in self._parents) + (child.cardinality,)
        values = np.zeros(shape, dtype=float)
        seen = set()
        for key, row in table.items():
            key = tuple(key)
            if len(key) != len(self._parents):
                raise StructureError(
                    f"CPT key {key} does not match parents {parent_names}"
                )
            row_arr = np.asarray(row, dtype=float)
            if row_arr.shape != (child.cardinality,):
                raise StructureError(
                    f"CPT row for {key} has wrong length "
                    f"{row_arr.shape} (child has {child.cardinality} states)"
                )
            if np.any(row_arr < 0):
                raise DomainError(f"negative probability in CPT row for {key}")
            if not np.isclose(row_arr.sum(), 1.0, atol=1e-9):
                raise DomainError(
                    f"CPT row for {key} sums to {row_arr.sum()}, expected 1"
                )
            idx = tuple(p.index_of(s) for p, s in zip(self._parents, key))
            values[idx] = row_arr
            seen.add(key)
        expected_keys = 1
        for p in self._parents:
            expected_keys *= p.cardinality
        if len(seen) != expected_keys:
            raise StructureError(
                f"CPT for {child.name!r} specifies {len(seen)} of "
                f"{expected_keys} parent combinations"
            )
        self._values = values

    @property
    def child(self) -> Variable:
        return self._child

    @property
    def parents(self) -> Tuple[Variable, ...]:
        return self._parents

    @property
    def values(self) -> np.ndarray:
        """The table as an array over ``(parent axes..., child axis)``."""
        return self._values.copy()

    def probability(self, child_state: str, parent_states: Tuple[str, ...] = ()) -> float:
        """``P(child = child_state | parents = parent_states)``."""
        idx = tuple(
            p.index_of(s) for p, s in zip(self._parents, tuple(parent_states))
        )
        if len(idx) != len(self._parents):
            raise StructureError("parent_states does not match parents")
        return float(self._values[idx + (self._child.index_of(child_state),)])

    def to_factor(self) -> Factor:
        """The CPT as a factor over (parents..., child)."""
        return Factor(list(self._parents) + [self._child], self._values)

    @classmethod
    def root(cls, child: Variable, probabilities: Sequence[float]) -> "CPT":
        """CPT for a parentless variable."""
        return cls(child, [], {(): probabilities})

    @classmethod
    def boolean_root(cls, child: Variable, p_true: float) -> "CPT":
        """Root CPT for a boolean variable with ``P(true) = p_true``."""
        if not 0 <= p_true <= 1:
            raise DomainError(f"p_true must lie in [0, 1], got {p_true}")
        return cls.root(child, [p_true, 1.0 - p_true])

    def __repr__(self) -> str:
        parents = ", ".join(p.name for p in self._parents) or "-"
        return f"CPT({self._child.name} | {parents})"
