"""Text rendering: ASCII charts and aligned tables for benches/examples."""

from .ascii import density_chart, line_chart
from .report import case_report_markdown
from .tables import format_records, format_row, format_table

__all__ = [
    "density_chart",
    "line_chart",
    "case_report_markdown",
    "format_records",
    "format_row",
    "format_table",
]
