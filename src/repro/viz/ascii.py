"""ASCII charts — the offline stand-in for the paper's figures.

matplotlib is not available in this environment, so benches and examples
render figure series as monospace line charts.  The numbers are the
reproducible artefact; the charts make the shapes reviewable in a
terminal or log file.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import DomainError

__all__ = ["line_chart", "density_chart"]

_MARKERS = "*o+x#@%&"


def _transform(values: np.ndarray, log: bool) -> np.ndarray:
    if not log:
        return values.astype(float)
    if np.any(values <= 0):
        raise DomainError("log axis requires strictly positive values")
    return np.log10(values)


def line_chart(
    x: Sequence[float],
    series: Sequence[Sequence[float]],
    labels: Optional[Sequence[str]] = None,
    title: str = "",
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more series as an ASCII line chart.

    Each series shares the x vector.  Markers distinguish series;
    overlapping points show the later series' marker.
    """
    x_arr = np.asarray(x, dtype=float)
    if x_arr.ndim != 1 or x_arr.size < 2:
        raise DomainError("x must be a 1-D sequence with at least 2 points")
    series_arrays = [np.asarray(s, dtype=float) for s in series]
    if not series_arrays:
        raise DomainError("need at least one series")
    for s in series_arrays:
        if s.shape != x_arr.shape:
            raise DomainError("every series must match the x shape")
    if labels is not None and len(labels) != len(series_arrays):
        raise DomainError("labels must match the series count")
    if width < 20 or height < 5:
        raise DomainError("chart must be at least 20x5")

    tx = _transform(x_arr, log_x)
    ty = [_transform(s, log_y) for s in series_arrays]
    y_all = np.concatenate(ty)
    x_min, x_max = float(tx.min()), float(tx.max())
    y_min, y_max = float(y_all.min()), float(y_all.max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for series_index, values in enumerate(ty):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for xi, yi in zip(tx, values):
            col = int(round((xi - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yi - y_min) / (y_max - y_min) * (height - 1)))
            canvas[height - 1 - row][col] = marker

    def axis_value(t: float, log: bool) -> float:
        return 10.0**t if log else t

    lines: List[str] = []
    if title:
        lines.append(title)
    top = axis_value(y_max, log_y)
    bottom = axis_value(y_min, log_y)
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = f"{top:>10.3g} |"
        elif row_index == height - 1:
            prefix = f"{bottom:>10.3g} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    left = axis_value(x_min, log_x)
    right = axis_value(x_max, log_x)
    lines.append(
        " " * 12 + f"{left:<12.3g}{x_label:^{max(width - 24, 1)}}{right:>12.3g}"
    )
    if labels is not None:
        legend = "   ".join(
            f"{_MARKERS[i % len(_MARKERS)]} = {label}"
            for i, label in enumerate(labels)
        )
        lines.append(" " * 12 + legend)
    lines.append(" " * 12 + f"(y: {y_label}{', log' if log_y else ''};"
                 f" x{', log' if log_x else ''})")
    return "\n".join(lines)


def density_chart(
    grid: Sequence[float],
    densities: Sequence[Sequence[float]],
    labels: Optional[Sequence[str]] = None,
    title: str = "",
    log_x: bool = True,
    width: int = 72,
    height: int = 18,
) -> str:
    """Convenience wrapper for plotting densities (linear y, log x)."""
    return line_chart(
        grid,
        densities,
        labels=labels,
        title=title,
        width=width,
        height=height,
        log_x=log_x,
        log_y=False,
        x_label="failure rate / pfd",
        y_label="density",
    )
