"""Plain-text table formatting for bench and example output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import DomainError

__all__ = ["format_table", "format_row"]


def _stringify(cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e5):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    """One row padded to the given column widths."""
    return " | ".join(
        _stringify(cell).rjust(width) for cell, width in zip(cells, widths)
    )


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A simple aligned table with a header rule."""
    rows = [list(r) for r in rows]
    if not headers:
        raise DomainError("table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise DomainError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
    widths = [
        max(len(str(h)), *(len(_stringify(row[i])) for row in rows))
        if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    lines.append(" | ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
