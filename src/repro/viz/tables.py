"""Plain-text table formatting for bench, example and sweep output."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from ..errors import DomainError

__all__ = ["format_table", "format_row", "format_records"]


def _stringify(cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e5):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    """One row padded to the given column widths."""
    return " | ".join(
        _stringify(cell).rjust(width) for cell, width in zip(cells, widths)
    )


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A simple aligned table with a header rule."""
    rows = [list(r) for r in rows]
    if not headers:
        raise DomainError("table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise DomainError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
    widths = [
        max(len(str(h)), *(len(_stringify(row[i])) for row in rows))
        if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    lines.append(" | ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Tabulate a list of dict rows (e.g. a sweep's scenario records).

    ``columns`` fixes the order (and selection); by default every key is
    shown in first-seen order.  Missing cells render empty.
    """
    records = [dict(r) for r in records]
    if columns is None:
        seen: List[str] = []
        for record in records:
            for key in record:
                if key not in seen:
                    seen.append(key)
        columns = seen
    if not columns:
        raise DomainError("no columns to tabulate")
    rows = [[record.get(col, "") for col in columns] for record in records]
    return format_table(list(columns), rows)
