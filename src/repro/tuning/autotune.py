"""Measured autotuning: find each pipeline's fastest execution config.

:func:`autotune` runs a sweep (trimmed to a measurement budget) through
the streaming executor once per ``backend x chunk-size x dtype``
configuration, times each one (best of ``repeats``), and records the
winner — plus the full measurement grid as evidence — in a
:class:`~repro.tuning.profile.TuningProfile`.

The *fixed defaults* configuration (auto-resolved backend,
:data:`~repro.engine.plan.DEFAULT_CHUNK_SIZE` chunks, float64) is
always part of the grid, so the winning profile can never be slower
than the defaults on the measured workload — the argmax includes the
baseline.  Stage timings from the executor's telemetry
(``plan_s``/``compile_s``/``execute_s``/``sink_s``) ride along with
every grid point for later comparison via ``repro-case telemetry``.

Measurement runs write no sinks and use no result cache: they time the
plan → compile → execute core only, and they warm each configuration's
compile caches with one untimed round before the timed rounds.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..engine.plan import DEFAULT_CHUNK_SIZE, lower
from ..engine.spec import SweepSpec
from ..engine.stream import run_sweep_streaming
from ..errors import DomainError
from ..telemetry import tracer
from .profile import TuningEntry, TuningProfile

__all__ = ["autotune", "DEFAULT_BACKENDS", "DEFAULT_CHUNK_SIZES"]

#: Backends the tuner tries by default.  ``process`` is excluded: its
#: pool spin-up dwarfs the measurement budget and its win conditions
#: (CPU-bound scalar pipelines) are better probed explicitly.
DEFAULT_BACKENDS = ("vectorized", "serial", "thread")

#: Chunk sizes the tuner tries by default, bracketing the built-in.
DEFAULT_CHUNK_SIZES = (1024, 4096, DEFAULT_CHUNK_SIZE, 16384)

#: Scenario budget one measurement configuration runs.
DEFAULT_MAX_SCENARIOS = 4096


def _trimmed(sweep: SweepSpec, max_scenarios: int):
    """The sweep itself, or its first ``max_scenarios`` scenarios.

    Trimming reconstructs explicit scenarios through the plan's lazy
    decode, so parameters and per-scenario seeds are exactly what the
    full sweep's prefix would run.
    """
    total = sweep.n_scenarios()
    if total <= max_scenarios:
        return sweep, total
    plan = lower(sweep, chunk_size=DEFAULT_CHUNK_SIZE, dtype="float64")
    scenarios = tuple(
        plan.scenario(index) for index in range(max_scenarios)
    )
    return scenarios, max_scenarios


def _measure(
    sweep_like,
    backend: str,
    chunk_size: int,
    dtype: str,
    repeats: int,
) -> Tuple[float, Dict[str, float]]:
    """Best wall-clock seconds (and its stage timings) over ``repeats``."""
    best = float("inf")
    best_stages: Dict[str, float] = {}
    for _ in range(max(1, repeats)):
        plan = lower(sweep_like, chunk_size=chunk_size, dtype=dtype)
        started = time.perf_counter()
        meta = run_sweep_streaming(plan, backend=backend)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            best_stages = dict(meta.get("stage_timings", {}))
    return best, best_stages


def autotune(
    sweeps: Union[SweepSpec, Iterable[SweepSpec]],
    backends: Sequence[str] = DEFAULT_BACKENDS,
    chunk_sizes: Sequence[int] = DEFAULT_CHUNK_SIZES,
    dtypes: Sequence[str] = ("float64",),
    repeats: int = 3,
    max_scenarios: int = DEFAULT_MAX_SCENARIOS,
    profile: Optional[TuningProfile] = None,
    progress=None,
) -> TuningProfile:
    """Measure ``backend x chunk_size x dtype`` grids; return the winners.

    ``sweeps`` is one representative :class:`SweepSpec` per pipeline (a
    single spec or an iterable).  Each pipeline's grid always includes
    the fixed-defaults configuration, so the recorded winner is at
    least as fast as the defaults on the measured workload.  Pass
    ``profile`` to extend an existing profile; ``progress`` (if given)
    is called as ``progress(pipeline, config_index, n_configs)``.
    """
    if isinstance(sweeps, SweepSpec):
        sweeps = [sweeps]
    sweeps = list(sweeps)
    if not sweeps:
        raise DomainError("autotune needs at least one sweep to measure")
    if repeats < 1:
        raise DomainError("repeats must be positive")
    if max_scenarios < 1:
        raise DomainError("max_scenarios must be positive")
    profile = profile if profile is not None else TuningProfile()

    for sweep in sweeps:
        pipeline = sweep.pipeline
        sweep_like, n_scenarios = _trimmed(sweep, max_scenarios)
        probe = lower(sweep_like, chunk_size=DEFAULT_CHUNK_SIZE,
                      dtype="float64")
        default_backend = (
            "vectorized" if probe.pipeline.supports_batch else "serial"
        )
        configs: List[Tuple[str, int, str]] = []
        # The fixed-defaults config leads the grid: whatever else is
        # measured, the winner is argmax over a set containing it.
        default_config = (default_backend, DEFAULT_CHUNK_SIZE, "float64")
        configs.append(default_config)
        for backend in backends:
            if backend == "vectorized" and not probe.pipeline.supports_batch:
                continue
            for chunk_size in chunk_sizes:
                for dtype in dtypes:
                    config = (backend, int(chunk_size), str(dtype))
                    if config not in configs:
                        configs.append(config)

        with tracer.span("tuning.autotune", pipeline=pipeline,
                         n_configs=len(configs),
                         n_scenarios=n_scenarios):
            # One untimed warmup round primes compile caches (networks,
            # cases, grids) so the timed rounds measure execution.
            _measure(sweep_like, *default_config, repeats=1)
            grid: List[Dict[str, Any]] = []
            for index, (backend, chunk_size, dtype) in enumerate(configs):
                if progress is not None:
                    progress(pipeline, index, len(configs))
                elapsed, stages = _measure(
                    sweep_like, backend, chunk_size, dtype, repeats
                )
                grid.append({
                    "backend": backend,
                    "chunk_size": chunk_size,
                    "dtype": dtype,
                    "elapsed_s": elapsed,
                    "rows_per_s": (
                        n_scenarios / elapsed if elapsed > 0
                        else float("inf")
                    ),
                    "stage_timings_s": stages,
                    "default": (backend, chunk_size, dtype)
                    == default_config,
                })
            winner = max(grid, key=lambda point: point["rows_per_s"])
            profile.set_entry(pipeline, TuningEntry(
                backend=winner["backend"],
                chunk_size=winner["chunk_size"],
                dtype=winner["dtype"],
                rows_per_s=winner["rows_per_s"],
                n_scenarios=n_scenarios,
                grid=tuple(grid),
            ))
    return profile
