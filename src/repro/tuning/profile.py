"""Tuning profiles: measured per-pipeline execution defaults.

A :class:`TuningProfile` records, for each pipeline, the backend /
chunk-size / dtype configuration that won an :func:`repro.tuning.autotune`
measurement, together with the throughput evidence (every configuration
measured, not just the winner).  Profiles round-trip through JSON::

    {
      "version": 1,
      "pipelines": {
        "survival_update": {
          "backend": "vectorized",
          "chunk_size": 8192,
          "dtype": "float64",
          "rows_per_s": 91000.0,
          "n_scenarios": 4096,
          "grid": [
            {"backend": "vectorized", "chunk_size": 4096,
             "dtype": "float64", "rows_per_s": 88000.0},
            ...
          ]
        }
      }
    }

One profile can be installed process-wide with
:func:`set_active_profile`; from then on
:func:`repro.engine.plan.lower` fills unset ``chunk_size`` / ``dtype``
arguments from the winning entry and the streaming executor resolves
``backend="auto"`` to the winning backend.  Explicit arguments always
beat the profile, and with no active profile nothing changes.

This module deliberately knows nothing about execution — the measuring
lives in :mod:`repro.tuning.autotune` — so the engine can import it
without a cycle.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DomainError

__all__ = [
    "DEFAULT_TUNING_PATH",
    "TuningEntry",
    "TuningProfile",
    "active_profile",
    "load_profile",
    "set_active_profile",
    "tuned_backend",
    "tuned_defaults",
]

#: Conventional on-disk location (what ``repro-case tune`` writes and
#: ``repro-case sweep --tuned`` reads when no path is given).
DEFAULT_TUNING_PATH = "tuning.json"

_PROFILE_VERSION = 1


@dataclass(frozen=True)
class TuningEntry:
    """One pipeline's measured winner plus the full measurement grid."""

    backend: str
    chunk_size: int
    dtype: str
    rows_per_s: float
    n_scenarios: int = 0
    grid: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "chunk_size": self.chunk_size,
            "dtype": self.dtype,
            "rows_per_s": self.rows_per_s,
            "n_scenarios": self.n_scenarios,
            "grid": [dict(point) for point in self.grid],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuningEntry":
        try:
            return cls(
                backend=str(data["backend"]),
                chunk_size=int(data["chunk_size"]),
                dtype=str(data["dtype"]),
                rows_per_s=float(data["rows_per_s"]),
                n_scenarios=int(data.get("n_scenarios", 0)),
                grid=tuple(dict(point) for point in data.get("grid", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DomainError(f"malformed tuning entry: {exc}") from exc


class TuningProfile:
    """Measured defaults for a set of pipelines; JSON round-trippable."""

    def __init__(
        self, entries: Optional[Dict[str, TuningEntry]] = None
    ):
        self._entries: Dict[str, TuningEntry] = dict(entries or {})

    def __contains__(self, pipeline: str) -> bool:
        return pipeline in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def pipelines(self) -> List[str]:
        return sorted(self._entries)

    def entry(self, pipeline: str) -> Optional[TuningEntry]:
        return self._entries.get(pipeline)

    def set_entry(self, pipeline: str, entry: TuningEntry) -> None:
        self._entries[pipeline] = entry

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _PROFILE_VERSION,
            "pipelines": {
                name: entry.to_dict()
                for name, entry in sorted(self._entries.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuningProfile":
        if not isinstance(data, dict) or "pipelines" not in data:
            raise DomainError(
                "tuning profile must be a mapping with a 'pipelines' key"
            )
        version = data.get("version", _PROFILE_VERSION)
        if version != _PROFILE_VERSION:
            raise DomainError(
                f"unsupported tuning profile version {version!r}"
            )
        return cls({
            name: TuningEntry.from_dict(entry)
            for name, entry in data["pipelines"].items()
        })

    def save(self, path) -> None:
        """Write the profile as pretty-printed JSON (atomic rename)."""
        resolved = os.path.abspath(str(path))
        tmp = f"{resolved}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, resolved)

    def __repr__(self) -> str:
        return f"TuningProfile({self.pipelines()})"


def load_profile(path) -> TuningProfile:
    """Read a :class:`TuningProfile` from a JSON tuning file."""
    try:
        with open(str(path), "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise DomainError(f"cannot read tuning file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DomainError(f"invalid tuning file {path}: {exc}") from exc
    return TuningProfile.from_dict(data)


# --------------------------------------------------------------------- #
# The process-wide active profile
# --------------------------------------------------------------------- #

_active_lock = threading.Lock()
_active: Optional[TuningProfile] = None


def set_active_profile(
    profile: Optional[TuningProfile],
) -> Optional[TuningProfile]:
    """Install ``profile`` as the process default (None to clear).

    Returns the previously active profile so callers can restore it.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = profile
    return previous


def active_profile() -> Optional[TuningProfile]:
    """The currently installed profile, or None."""
    with _active_lock:
        return _active


def tuned_defaults(
    pipeline: Optional[str],
) -> Tuple[Optional[int], Optional[str]]:
    """``(chunk_size, dtype)`` the active profile suggests, or Nones."""
    profile = active_profile()
    if profile is None or pipeline is None:
        return None, None
    entry = profile.entry(pipeline)
    if entry is None:
        return None, None
    return entry.chunk_size, entry.dtype


def tuned_backend(pipeline: Optional[str]) -> Optional[str]:
    """The backend the active profile suggests for ``pipeline``, or None."""
    profile = active_profile()
    if profile is None or pipeline is None:
        return None
    entry = profile.entry(pipeline)
    return entry.backend if entry is not None else None
