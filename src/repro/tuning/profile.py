"""Tuning profiles: measured per-pipeline execution defaults.

A :class:`TuningProfile` records, for each pipeline **and sweep
shape**, the backend / chunk-size / dtype configuration that won an
:func:`repro.tuning.autotune` measurement, together with the
throughput evidence (every configuration measured, not just the
winner).  Shapes are scenario-count decade buckets —
:func:`shape_bucket` maps ``n_scenarios`` to a label like ``"1e4"`` —
because a chunk size that wins at 10\\ :sup:`4` scenarios says little
about a 10\\ :sup:`6`-scenario sweep: lookups match the exact bucket or
an adjacent decade, and otherwise fall back to the engine defaults
instead of silently extrapolating.  Profiles round-trip through JSON::

    {
      "version": 2,
      "pipelines": {
        "survival_update": {
          "buckets": {
            "1e4": {
              "backend": "vectorized",
              "chunk_size": 8192,
              "dtype": "float64",
              "rows_per_s": 91000.0,
              "n_scenarios": 4096,
              "grid": [
                {"backend": "vectorized", "chunk_size": 4096,
                 "dtype": "float64", "rows_per_s": 88000.0},
                ...
              ]
            }
          }
        }
      }
    }

Version-1 files (one flat entry per pipeline) still load: each entry
lands in the bucket of its recorded ``n_scenarios`` (the wildcard
bucket ``"*"`` when unrecorded, which matches any shape).

One profile can be installed process-wide with
:func:`set_active_profile`; from then on
:func:`repro.engine.plan.lower` fills unset ``chunk_size`` / ``dtype``
arguments from the winning entry for the sweep's shape and the
streaming executor resolves ``backend="auto"`` to the winning backend.
Explicit arguments always beat the profile, and with no active profile
nothing changes.

This module deliberately knows nothing about execution — the measuring
lives in :mod:`repro.tuning.autotune` — so the engine can import it
without a cycle.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DomainError

__all__ = [
    "DEFAULT_TUNING_PATH",
    "TuningEntry",
    "TuningProfile",
    "active_profile",
    "load_profile",
    "set_active_profile",
    "shape_bucket",
    "tuned_backend",
    "tuned_defaults",
]

#: Conventional on-disk location (what ``repro-case tune`` writes and
#: ``repro-case sweep --tuned`` reads when no path is given).
DEFAULT_TUNING_PATH = "tuning.json"

_PROFILE_VERSION = 2

#: Bucket label matching any sweep shape (v1 entries without a
#: recorded scenario count land here).
WILDCARD_BUCKET = "*"


def shape_bucket(n_scenarios: int) -> str:
    """The scenario-count decade bucket: ``"1e4"`` for ~10^4 scenarios.

    Buckets are the nearest power of ten (``round(log10(n))``), so
    4 096 measured scenarios land in ``"1e4"`` and a 10^6-scenario
    sweep in ``"1e6"`` — two decades apart, which lookups refuse to
    bridge.  Non-positive counts map to the wildcard bucket.
    """
    if n_scenarios <= 0:
        return WILDCARD_BUCKET
    return f"1e{round(math.log10(n_scenarios))}"


def _bucket_decade(label: str) -> Optional[int]:
    """The decade of a bucket label, or None for the wildcard."""
    if label == WILDCARD_BUCKET:
        return None
    try:
        return int(label[2:]) if label.startswith("1e") else None
    except ValueError:
        return None


@dataclass(frozen=True)
class TuningEntry:
    """One pipeline's measured winner plus the full measurement grid."""

    backend: str
    chunk_size: int
    dtype: str
    rows_per_s: float
    n_scenarios: int = 0
    grid: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "chunk_size": self.chunk_size,
            "dtype": self.dtype,
            "rows_per_s": self.rows_per_s,
            "n_scenarios": self.n_scenarios,
            "grid": [dict(point) for point in self.grid],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuningEntry":
        try:
            return cls(
                backend=str(data["backend"]),
                chunk_size=int(data["chunk_size"]),
                dtype=str(data["dtype"]),
                rows_per_s=float(data["rows_per_s"]),
                n_scenarios=int(data.get("n_scenarios", 0)),
                grid=tuple(dict(point) for point in data.get("grid", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DomainError(f"malformed tuning entry: {exc}") from exc


class TuningProfile:
    """Measured defaults per pipeline and sweep-shape bucket.

    Lookups (:meth:`entry`) take the sweep's scenario count and match
    the exact :func:`shape_bucket`, an adjacent decade, or the wildcard
    — never further: a winner measured three decades away is no
    evidence, and returning None lets the engine keep its static
    defaults.  A shapeless lookup (``n_scenarios=0``) returns the
    wildcard entry or the largest-shape one, preserving the version-1
    "one entry per pipeline" behaviour for single-bucket profiles.
    """

    def __init__(
        self, entries: Optional[Dict[str, TuningEntry]] = None
    ):
        # pipeline -> bucket label -> entry
        self._entries: Dict[str, Dict[str, TuningEntry]] = {}
        for pipeline, entry in (entries or {}).items():
            self.set_entry(pipeline, entry)

    def __contains__(self, pipeline: str) -> bool:
        return pipeline in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def pipelines(self) -> List[str]:
        return sorted(self._entries)

    def buckets(self, pipeline: str) -> List[str]:
        """The bucket labels recorded for ``pipeline`` (sorted)."""
        return sorted(self._entries.get(pipeline, {}))

    def bucket_entries(self, pipeline: str) -> Dict[str, TuningEntry]:
        """Every recorded ``bucket -> entry`` for ``pipeline``."""
        return dict(self._entries.get(pipeline, {}))

    def entry(self, pipeline: str,
              n_scenarios: int = 0) -> Optional[TuningEntry]:
        """The best-matching entry for ``pipeline`` at this shape.

        Exact bucket first, then the nearest adjacent decade, then the
        wildcard; None when every recorded bucket is further than one
        decade away (the winner does not transfer to that scale).
        """
        buckets = self._entries.get(pipeline)
        if not buckets:
            return None
        if n_scenarios <= 0:
            if WILDCARD_BUCKET in buckets:
                return buckets[WILDCARD_BUCKET]
            label = max(buckets, key=lambda b: _bucket_decade(b) or 0)
            return buckets[label]
        label = shape_bucket(n_scenarios)
        if label in buckets:
            return buckets[label]
        decade = _bucket_decade(label)
        neighbours = [
            b for b in buckets
            if b != WILDCARD_BUCKET
            and abs(_bucket_decade(b) - decade) <= 1
        ]
        if neighbours:
            # Nearest decade; a tie (one below, one above) prefers the
            # larger shape — closer to the asymptotic regime.
            best = min(
                neighbours,
                key=lambda b: (abs(_bucket_decade(b) - decade),
                               -_bucket_decade(b)),
            )
            return buckets[best]
        return buckets.get(WILDCARD_BUCKET)

    def set_entry(self, pipeline: str, entry: TuningEntry,
                  n_scenarios: Optional[int] = None) -> None:
        """Record ``entry`` under the bucket of ``n_scenarios`` (default:
        the entry's own recorded measurement size)."""
        count = entry.n_scenarios if n_scenarios is None else n_scenarios
        bucket = shape_bucket(count)
        self._entries.setdefault(pipeline, {})[bucket] = entry

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _PROFILE_VERSION,
            "pipelines": {
                name: {
                    "buckets": {
                        bucket: entry.to_dict()
                        for bucket, entry in sorted(buckets.items())
                    }
                }
                for name, buckets in sorted(self._entries.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuningProfile":
        if not isinstance(data, dict) or "pipelines" not in data:
            raise DomainError(
                "tuning profile must be a mapping with a 'pipelines' key"
            )
        version = data.get("version", _PROFILE_VERSION)
        if version not in (1, 2):
            raise DomainError(
                f"unsupported tuning profile version {version!r}"
            )
        profile = cls()
        for name, payload in data["pipelines"].items():
            if version == 1:
                # One flat entry; bucket by its recorded measurement
                # size (wildcard when it never recorded one).
                profile.set_entry(name, TuningEntry.from_dict(payload))
                continue
            buckets = payload.get("buckets")
            if not isinstance(buckets, dict):
                raise DomainError(
                    f"pipeline {name!r} needs a 'buckets' mapping in a "
                    f"version-2 tuning profile"
                )
            for bucket, entry_data in buckets.items():
                entry = TuningEntry.from_dict(entry_data)
                decade = _bucket_decade(bucket)
                profile._entries.setdefault(name, {})[
                    bucket if (decade is not None
                               or bucket == WILDCARD_BUCKET)
                    else shape_bucket(entry.n_scenarios)
                ] = entry
        return profile

    def save(self, path) -> None:
        """Write the profile as pretty-printed JSON (atomic rename)."""
        resolved = os.path.abspath(str(path))
        tmp = f"{resolved}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, resolved)

    def __repr__(self) -> str:
        return f"TuningProfile({self.pipelines()})"


def load_profile(path) -> TuningProfile:
    """Read a :class:`TuningProfile` from a JSON tuning file."""
    try:
        with open(str(path), "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise DomainError(f"cannot read tuning file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DomainError(f"invalid tuning file {path}: {exc}") from exc
    return TuningProfile.from_dict(data)


# --------------------------------------------------------------------- #
# The process-wide active profile
# --------------------------------------------------------------------- #

_active_lock = threading.Lock()
_active: Optional[TuningProfile] = None


def set_active_profile(
    profile: Optional[TuningProfile],
) -> Optional[TuningProfile]:
    """Install ``profile`` as the process default (None to clear).

    Returns the previously active profile so callers can restore it.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = profile
    return previous


def active_profile() -> Optional[TuningProfile]:
    """The currently installed profile, or None."""
    with _active_lock:
        return _active


def tuned_defaults(
    pipeline: Optional[str],
    n_scenarios: int = 0,
) -> Tuple[Optional[int], Optional[str]]:
    """``(chunk_size, dtype)`` the active profile suggests, or Nones.

    ``n_scenarios`` selects the sweep-shape bucket; winners more than
    one decade from the measured shape do not apply.
    """
    profile = active_profile()
    if profile is None or pipeline is None:
        return None, None
    entry = profile.entry(pipeline, n_scenarios)
    if entry is None:
        return None, None
    return entry.chunk_size, entry.dtype


def tuned_backend(pipeline: Optional[str],
                  n_scenarios: int = 0) -> Optional[str]:
    """The backend the active profile suggests for ``pipeline`` at this
    sweep shape, or None."""
    profile = active_profile()
    if profile is None or pipeline is None:
        return None
    entry = profile.entry(pipeline, n_scenarios)
    return entry.backend if entry is not None else None
