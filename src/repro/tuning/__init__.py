"""Measured autotuning for the sweep engine.

The engine's execution knobs — backend, chunk size, parameter-plane
dtype — ship with sensible fixed defaults, but the fastest setting is a
property of the machine and the pipeline, not the code.  This package
measures instead of guessing:

* :func:`autotune` times each pipeline across a backend x chunk-size
  (x dtype) grid through the streaming executor and records the winner
  (the fixed-defaults configuration is always in the grid, so the
  winner is never slower than the defaults on the measured workload);
* :class:`TuningProfile` / :func:`load_profile` persist the winners —
  with their full measurement evidence — to a JSON tuning file;
* :func:`set_active_profile` installs a profile process-wide, after
  which :func:`repro.engine.plan.lower` fills unset chunk-size/dtype
  defaults from it and ``backend="auto"`` resolves to the measured
  winner.

CLI: ``repro-case tune`` writes a tuning file; ``repro-case sweep
--tuned [file]`` runs a sweep under one.
"""

from .autotune import (
    DEFAULT_BACKENDS,
    DEFAULT_CHUNK_SIZES,
    autotune,
)
from .profile import (
    DEFAULT_TUNING_PATH,
    TuningEntry,
    TuningProfile,
    active_profile,
    load_profile,
    set_active_profile,
    shape_bucket,
    tuned_backend,
    tuned_defaults,
)

__all__ = [
    "DEFAULT_BACKENDS",
    "DEFAULT_CHUNK_SIZES",
    "DEFAULT_TUNING_PATH",
    "TuningEntry",
    "TuningProfile",
    "active_profile",
    "autotune",
    "load_profile",
    "set_active_profile",
    "shape_bucket",
    "tuned_backend",
    "tuned_defaults",
]
