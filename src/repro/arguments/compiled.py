"""Compiled case evaluation: whole safety cases, swept in one pass.

:class:`CompiledCase` lowers a validated :class:`QuantifiedCase` once
into flat, topologically ordered node records — per node: its model, its
supporter slots, its parameter addresses and its assumption discounts —
and then evaluates ``P(top goal)`` for ``S`` scenarios in a single
vectorized sweep: one ``(S,)`` confidence array per node, leaves first,
combination rules folding child arrays upward, two-leg BBN fragments
going through :meth:`repro.bbn.CompiledNetwork.query_batch` with batched
CPT parameter planes.  Row ``s`` of the sweep reproduces
:meth:`QuantifiedCase.evaluate` under scenario ``s``'s overrides to
1e-12 — the per-node recursion stays as the oracle, off the hot path.

Compilation is memoised by case content (:func:`compile_case`), and case
files load through a small mtime-keyed cache (:func:`load_case`) so a
sweep that names the same YAML file per scenario parses it once.  Both
are regions of the unified :mod:`repro.compilecache`.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..compilecache import region as cache_region
from ..errors import DomainError
from ..telemetry import tracer
from .nodes import Assumption
from .quantified import NodeModel, QuantifiedCase

__all__ = ["CompiledCase", "compile_case", "load_case", "clear_case_caches"]


class _NodeRecord:
    """One lowered node: model + child slots + parameter addresses."""

    __slots__ = ("identifier", "model", "children", "param_addresses",
                 "assumption_addresses")

    def __init__(
        self,
        identifier: str,
        model: NodeModel,
        children: List[int],
        param_addresses: Dict[str, str],
        assumption_addresses: List[str],
    ):
        self.identifier = identifier
        self.model = model
        self.children = children
        self.param_addresses = param_addresses
        self.assumption_addresses = assumption_addresses


#: Fused groups flatten ``G`` sibling nodes into one ``(G*S,)`` call;
#: past this many elements the flattened temporaries fall out of cache
#: and the parameter copies outweigh the saved Python dispatch
#: (measured crossover between 1.4e5 and 5.9e5 elements), so oversized
#: groups fall back to per-node calls, which stay cache-blocked.
_FUSE_ELEMENT_CAP = 1 << 18


def _plan_fused_groups(
    records: List[_NodeRecord],
) -> List[List[Tuple[int, _NodeRecord]]]:
    """Level-batch topo-ordered records into same-model groups.

    A node's *level* is its longest distance from the leaves, so every
    child of a level-``L`` node lives strictly below ``L`` and whole
    levels can evaluate plane-at-a-time.  Within a level, nodes sharing
    a fusable model type and supporter count form one group (evaluated
    as a single flattened ``evaluate_batch`` call); everything else
    stays a singleton group, preserving per-node dispatch.  Group order
    is deterministic: ascending level, then first slot.
    """
    levels: List[int] = []
    for record in records:
        level = (
            1 + max(levels[slot] for slot in record.children)
            if record.children else 0
        )
        levels.append(level)
    grouped: Dict[Tuple[int, type, int], List[Tuple[int, _NodeRecord]]] = {}
    for slot, record in enumerate(records):
        if record.model.fusable:
            key = (levels[slot], type(record.model), len(record.children))
        else:
            key = (levels[slot], type(record.model), -1 - slot)
        grouped.setdefault(key, []).append((slot, record))
    return [
        grouped[key]
        for key in sorted(grouped, key=lambda k: (k[0], grouped[k][0][0]))
    ]


class CompiledCase:
    """A :class:`QuantifiedCase` lowered to flat topo-ordered records.

    Use :func:`compile_case` rather than the constructor to get
    content-hash memoisation for free.
    """

    def __init__(self, case: QuantifiedCase):
        case.validate()
        self.case = case
        graph = case.graph
        self._defaults = case.parameter_defaults()
        self._root = graph.root_goal().identifier
        order = [
            identifier
            for identifier in reversed(graph.topological_order())
            if graph.node(identifier).kind in ("goal", "strategy", "solution")
        ]
        slots = {identifier: index for index, identifier in enumerate(order)}
        records: List[_NodeRecord] = []
        for identifier in order:
            model = case._model_for(identifier)
            if model is None:  # pragma: no cover - validate() forbids this
                raise DomainError(f"node {identifier!r} has no quantification")
            children = [
                slots[supporter.identifier]
                for supporter in graph.supporters(identifier)
            ]
            param_addresses = {
                name: f"{identifier}.{name}"
                for name in model.param_names()
            }
            assumption_addresses = [
                f"{annotation.identifier}.p_true"
                for annotation in graph.annotations(identifier)
                if isinstance(annotation, Assumption)
            ]
            records.append(_NodeRecord(
                identifier, model, children, param_addresses,
                assumption_addresses,
            ))
        self._records = records
        self._slots = slots
        self._assumption_addresses = case.assumption_addresses()
        self._fused_groups = _plan_fused_groups(records)
        self._plane_cache: Dict[
            Tuple[int, str], Dict[str, np.ndarray]
        ] = {}
        self._plane_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def root_id(self) -> str:
        return self._root

    @property
    def node_ids(self) -> Tuple[str, ...]:
        """Quantified node ids in evaluation (children-first) order."""
        return tuple(record.identifier for record in self._records)

    def parameter_defaults(self) -> Dict[str, float]:
        return dict(self._defaults)

    def __repr__(self) -> str:
        return f"CompiledCase({len(self._records)} nodes)"

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate_sweep(
        self,
        columns: Optional[Mapping[str, np.ndarray]] = None,
        n_scenarios: Optional[int] = None,
        fused: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Node id -> ``(S,)`` confidence array for ``S`` scenarios.

        ``columns`` maps parameter addresses (``"<node>.<name>"``) to
        per-scenario value arrays (scalars broadcast); unbound
        parameters take their defaults.  Column ``s`` of the result
        matches ``case.evaluate(overrides_s)`` to 1e-12.

        By default sibling nodes sharing a fusable model type evaluate
        level-batched as one flattened call per group — same values (the
        models are elementwise over scenarios), a fraction of the Python
        dispatch.  ``fused=False`` forces the original per-node loop;
        it exists for comparison benchmarks and paranoia checks.
        """
        columns = dict(columns or {})
        unknown = sorted(set(columns) - set(self._defaults))
        if unknown:
            raise DomainError(
                f"unknown case parameters: {', '.join(unknown)}"
            )
        if n_scenarios is None:
            n_scenarios = 1
            for values in columns.values():
                size = np.asarray(values).size
                if size > 1:
                    n_scenarios = size
                    break
        from ..engine.dtypes import parameter_dtype

        dtype = parameter_dtype()
        resolved = dict(self._default_planes(n_scenarios, dtype))
        for name in columns:
            values = np.asarray(columns[name], dtype=dtype)
            if values.size not in (1, n_scenarios):
                raise DomainError(
                    f"column {name!r} has {values.size} values for "
                    f"{n_scenarios} scenarios"
                )
            resolved[name] = np.broadcast_to(
                values.reshape(-1), (n_scenarios,)
            )
        for address in self._assumption_addresses:
            # Default planes were range-checked once when cached; only
            # overridden columns need the per-call sweep.
            if address not in columns:
                continue
            column = resolved[address]
            if np.any((column < 0) | (column > 1)):
                raise DomainError(
                    f"{address} must lie in [0, 1] for every scenario"
                )
        confidences: List[Optional[np.ndarray]] = (
            [None] * len(self._records)
        )
        out: Dict[str, np.ndarray] = {}
        with tracer.span("case.evaluate_sweep", n_scenarios=n_scenarios,
                         n_nodes=len(self._records), fused=fused):
            for group in self._fused_groups:
                if (
                    fused
                    and len(group) > 1
                    and len(group) * n_scenarios <= _FUSE_ELEMENT_CAP
                ):
                    self._evaluate_group_fused(
                        group, resolved, confidences, out, n_scenarios,
                        dtype,
                    )
                else:
                    for slot, record in group:
                        self._evaluate_node(
                            slot, record, resolved, confidences, out,
                            n_scenarios, dtype,
                        )
        return out

    def _default_planes(
        self, n_scenarios: int, dtype: np.dtype
    ) -> Dict[str, np.ndarray]:
        """Broadcast default columns for ``S`` scenarios, cached.

        Defaults never change after compilation, so the per-address
        broadcast views (and the range check on assumption defaults)
        are paid once per distinct (scenario count, dtype) — sweeps
        re-enter with the same chunk size thousands of times.  The
        returned dict is shared; callers copy before overriding.
        """
        key = (n_scenarios, dtype.str)
        with self._plane_lock:
            cached = self._plane_cache.get(key)
        if cached is not None:
            return cached
        planes = {
            name: np.broadcast_to(
                np.asarray(default, dtype=dtype).reshape(-1),
                (n_scenarios,),
            )
            for name, default in self._defaults.items()
        }
        for address in self._assumption_addresses:
            column = planes[address]
            if np.any((column < 0) | (column > 1)):
                raise DomainError(
                    f"{address} must lie in [0, 1] for every scenario"
                )
        with self._plane_lock:
            if len(self._plane_cache) >= 8:
                self._plane_cache.pop(next(iter(self._plane_cache)))
            self._plane_cache[key] = planes
        return planes

    def _evaluate_node(
        self,
        slot: int,
        record: _NodeRecord,
        resolved: Mapping[str, np.ndarray],
        confidences: List[Optional[np.ndarray]],
        out: Dict[str, np.ndarray],
        n_scenarios: int,
        dtype: np.dtype,
    ) -> None:
        """Original per-node dispatch: one ``evaluate_batch`` per record."""
        with tracer.span(
            "case.node", node=record.identifier,
            model=type(record.model).__name__,
        ):
            params = {
                name: resolved[address]
                for name, address in record.param_addresses.items()
            }
            record.model.validate_batch_params(params)
            children = (
                np.stack(
                    [confidences[child] for child in record.children]
                )
                if record.children
                else np.empty((0, n_scenarios))
            )
            confidence = record.model.evaluate_batch(params, children)
            confidence = np.broadcast_to(
                np.asarray(confidence, dtype=dtype), (n_scenarios,)
            )
            for address in record.assumption_addresses:
                confidence = confidence * resolved[address]
            confidences[slot] = confidence
            out[record.identifier] = confidence

    def _evaluate_group_fused(
        self,
        group: List[Tuple[int, _NodeRecord]],
        resolved: Mapping[str, np.ndarray],
        confidences: List[Optional[np.ndarray]],
        out: Dict[str, np.ndarray],
        n_scenarios: int,
        dtype: np.dtype,
    ) -> None:
        """One flattened ``evaluate_batch`` call for ``G`` sibling nodes.

        Parameter columns concatenate to ``(G*S,)`` and child planes to
        ``(k, G*S)``; the models in a fused group are elementwise over
        scenarios, so slicing the ``(G*S,)`` result back into per-node
        rows reproduces per-node dispatch bit-for-bit.
        """
        model = group[0][1].model
        n_children = len(group[0][1].children)
        with tracer.span(
            "case.fused_group", model=type(model).__name__,
            n_nodes=len(group), n_children=n_children,
        ):
            params = {
                name: np.concatenate([
                    resolved[record.param_addresses[name]]
                    for _, record in group
                ])
                for name in model.param_names()
            }
            model.validate_batch_params(params)
            flat = len(group) * n_scenarios
            children = (
                np.stack([
                    np.concatenate([
                        confidences[record.children[row]]
                        for _, record in group
                    ])
                    for row in range(n_children)
                ])
                if n_children
                else np.empty((0, flat))
            )
            plane = np.asarray(
                model.evaluate_batch(params, children), dtype=dtype
            )
            plane = np.broadcast_to(plane, (flat,)).reshape(
                len(group), n_scenarios
            )
            for row, (slot, record) in enumerate(group):
                confidence = plane[row]
                for address in record.assumption_addresses:
                    confidence = confidence * resolved[address]
                confidences[slot] = confidence
                out[record.identifier] = confidence

    def top_confidence_sweep(
        self,
        columns: Optional[Mapping[str, np.ndarray]] = None,
        n_scenarios: Optional[int] = None,
    ) -> np.ndarray:
        """``P(top goal)`` per scenario — the headline ``(S,)`` column."""
        return self.evaluate_sweep(columns, n_scenarios)[self._root]


# ---------------------------------------------------------------------- #
# Caches: regions of the unified repro.compilecache
# ---------------------------------------------------------------------- #

_compile_cache = cache_region("arguments.case", maxsize=128)
_file_cache = cache_region("arguments.case_file", maxsize=64)


def compile_case(case: QuantifiedCase) -> CompiledCase:
    """Lower ``case`` to a :class:`CompiledCase`, memoised by content.

    The key is :meth:`QuantifiedCase.content_hash` in the
    ``"arguments.case"`` region of :mod:`repro.compilecache`, so sweeps
    that rebuild an identical case per scenario share one lowering (the
    ``case_confidence`` pipeline relies on this).
    """
    return _compile_cache.get_or_create(
        case.content_hash(), lambda: CompiledCase(case)
    )


def load_case(path) -> QuantifiedCase:
    """Load a case file, cached by resolved path + (mtime, size, inode).

    Sweep resolution touches the case file once per scenario; the
    ``"arguments.case_file"`` cache region makes that a dictionary
    lookup while still noticing edits on disk.
    """
    resolved = os.path.abspath(str(path))
    try:
        stat = os.stat(resolved)
    except OSError as exc:
        raise DomainError(
            f"cannot read case file {path}: {exc}"
        ) from exc
    # Nanosecond mtime plus inode: a same-size rewrite inside one
    # coarse mtime tick must still invalidate the entry.
    state = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
    hit = _file_cache.get(resolved)
    if hit is not None and hit[0] == state:
        return hit[1]
    case = QuantifiedCase.from_file(resolved)
    _file_cache.put(resolved, (state, case))
    return case


def clear_case_caches() -> None:
    """Drop the compile and file caches (tests and long-lived servers)."""
    _compile_cache.clear()
    _file_cache.clear()
