"""Multi-legged arguments as explicit Bayesian networks (Section 4.2).

The paper observes that "multi-legged" is used informally for two distinct
moves: a second technique that *attacks the tail* of the first judgement,
and a separate argument that *reduces the required confidence* in the
first.  Littlewood & Wright [12] analyse the subtleties — in particular
that dependence between the legs' underpinnings erodes the benefit.

This module builds the two-leg model as a network::

    S  (shared underpinning sound)      P(S) = 1 - shared doubt
    A1 <- S ->  A2                      leg assumptions, correlated via S
    G  (claim true)                     prior
    E1 <- (G, A1),  E2 <- (G, A2)       leg evidence observations

and computes ``P(G | E1 = passed, E2 = passed)`` exactly.  The
``dependence`` dial moves assumption doubt from leg-private (independent)
to shared (common cause): at 0 the legs fail independently; at 1 all
their assumption doubt is common, and the second leg adds least.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..bbn import BayesianNetwork, CPT, Variable, VariableElimination, compile_network
from ..compilecache import region as cache_region
from ..errors import DomainError
from ..numerics import linear_grid
from .legs import ArgumentLeg

__all__ = [
    "TwoLegResult",
    "build_two_leg_network",
    "two_leg_posterior",
    "two_leg_posterior_sweep",
    "two_leg_cpt_planes",
    "diversity_gain",
]


@dataclass(frozen=True)
class TwoLegResult:
    """Posterior confidences for one and two legs, plus the gain."""

    prior: float
    single_leg: float
    both_legs: float
    dependence: float

    @property
    def gain(self) -> float:
        """Extra confidence the second leg buys."""
        return self.both_legs - self.single_leg

    @property
    def doubt_reduction_factor(self) -> float:
        """Factor by which remaining doubt shrinks when the leg is added."""
        single_doubt = 1.0 - self.single_leg
        both_doubt = 1.0 - self.both_legs
        if both_doubt <= 0:
            return float("inf")
        return single_doubt / both_doubt


def _split_assumption(leg: ArgumentLeg, dependence: float):
    """Split a leg's assumption doubt into shared and private parts.

    Total validity ``v`` is preserved: with shared-cause validity ``s``
    and private validity ``p`` we keep ``s * p = v`` and allocate a
    fraction ``dependence`` of the *doubt* to the shared cause.
    """
    doubt = 1.0 - leg.assumption_validity
    shared_doubt = dependence * doubt
    shared_validity = 1.0 - shared_doubt
    if shared_validity <= 0:
        return 0.0, 1.0
    private_validity = leg.assumption_validity / shared_validity
    return shared_validity, min(private_validity, 1.0)


def build_two_leg_network(
    prior_claim: float,
    leg1: ArgumentLeg,
    leg2: ArgumentLeg,
    dependence: float = 0.0,
) -> BayesianNetwork:
    """Construct the two-leg BBN described in the module docstring."""
    if not 0 <= prior_claim <= 1:
        raise DomainError(f"prior must lie in [0, 1], got {prior_claim}")
    if not 0 <= dependence <= 1:
        raise DomainError(f"dependence must lie in [0, 1], got {dependence}")

    shared1, private1 = _split_assumption(leg1, dependence)
    shared2, private2 = _split_assumption(leg2, dependence)
    # One shared cause with the weaker of the two shared validities keeps
    # the model simple and conservative; each leg keeps its own private
    # part exact so the marginal P(A_i) is preserved for leg 1 and at
    # least as doubtful for leg 2.
    p_shared = min(shared1, shared2)

    def private_for(leg: ArgumentLeg) -> float:
        if p_shared <= 0:
            return 1.0
        return min(leg.assumption_validity / p_shared, 1.0)

    goal = Variable.boolean("claim")
    shared = Variable.boolean("shared_underpinning")
    a1 = Variable.boolean("assumptions_leg1")
    a2 = Variable.boolean("assumptions_leg2")
    e1 = Variable.boolean("evidence_leg1")
    e2 = Variable.boolean("evidence_leg2")

    net = BayesianNetwork()
    net.add(CPT.boolean_root(goal, prior_claim))
    net.add(CPT.boolean_root(shared, p_shared))

    for var, leg in ((a1, leg1), (a2, leg2)):
        p_private = private_for(leg)
        net.add(
            CPT(
                var,
                [shared],
                {
                    ("true",): [p_private, 1.0 - p_private],
                    ("false",): [0.0, 1.0],
                },
            )
        )

    for var, leg, a_var in ((e1, leg1, a1), (e2, leg2, a2)):
        net.add(
            CPT(
                var,
                [goal, a_var],
                {
                    ("true", "true"): [leg.sensitivity, 1.0 - leg.sensitivity],
                    ("false", "true"): [1.0 - leg.specificity, leg.specificity],
                    ("true", "false"): [leg.noise_rate, 1.0 - leg.noise_rate],
                    ("false", "false"): [leg.noise_rate, 1.0 - leg.noise_rate],
                },
            )
        )
    return net


def two_leg_posterior(
    prior_claim: float,
    leg1: ArgumentLeg,
    leg2: ArgumentLeg,
    dependence: float = 0.0,
) -> TwoLegResult:
    """``P(claim | both legs passed)`` and the gain over leg 1 alone."""
    net = build_two_leg_network(prior_claim, leg1, leg2, dependence)
    engine = VariableElimination(net)
    both = engine.query(
        "claim", {"evidence_leg1": "true", "evidence_leg2": "true"}
    )["true"]
    single = engine.query("claim", {"evidence_leg1": "true"})["true"]
    return TwoLegResult(
        prior=prior_claim,
        single_leg=single,
        both_legs=both,
        dependence=dependence,
    )


def _build_two_leg_template():
    placeholder1 = ArgumentLeg("leg1", 0.5, 0.5, 0.5, 0.5)
    placeholder2 = ArgumentLeg("leg2", 0.5, 0.5, 0.5, 0.5)
    return compile_network(
        build_two_leg_network(0.5, placeholder1, placeholder2, 0.0)
    )


def _two_leg_template():
    """The compiled two-leg network *structure* (values are placeholders).

    Every two-leg network shares one shape — six boolean variables with
    fixed parent sets — so the lowered form (state codes, topo order,
    strides, elimination orders) is computed once and reused by every
    batched sweep; per-scenario CPT values arrive as parameter planes.
    Memoised under a fixed key in the ``"bbn.network"`` region of the
    unified cache, so repeated calls are one dict lookup — the network
    is neither rebuilt nor re-hashed on the batch-kernel hot path.
    """
    return cache_region("bbn.network").get_or_create(
        "template:two_leg", _build_two_leg_template
    )


def _check_unit_interval(label: str, values: np.ndarray) -> None:
    if np.any((values < 0) | (values > 1)):
        raise DomainError(f"{label} must lie in [0, 1] for every scenario")


def two_leg_cpt_planes(
    priors,
    dependences,
    leg1_validity, leg1_sensitivity, leg1_specificity, leg1_noise,
    leg2_validity, leg2_sensitivity, leg2_specificity, leg2_noise,
) -> Dict[str, np.ndarray]:
    """Per-scenario CPT planes for the two-leg network.

    All arguments broadcast to a common scenario count ``S``; the result
    maps each of the six variable names to an ``(S, *cpt shape)`` plane
    holding exactly the values :func:`build_two_leg_network` would put in
    scenario ``s``'s CPTs (same operations in the same order, so the
    planes are bit-identical to the scalar construction).
    """
    (prior, dep,
     v1, sens1, spec1, noise1,
     v2, sens2, spec2, noise2) = np.broadcast_arrays(
        *(np.atleast_1d(np.asarray(a, dtype=float)) for a in (
            priors, dependences,
            leg1_validity, leg1_sensitivity, leg1_specificity, leg1_noise,
            leg2_validity, leg2_sensitivity, leg2_specificity, leg2_noise,
        ))
    )
    _check_unit_interval("prior", prior)
    _check_unit_interval("dependence", dep)
    for label, values in (
        ("leg1 assumption_validity", v1), ("leg1 sensitivity", sens1),
        ("leg1 specificity", spec1), ("leg1 noise_rate", noise1),
        ("leg2 assumption_validity", v2), ("leg2 sensitivity", sens2),
        ("leg2 specificity", spec2), ("leg2 noise_rate", noise2),
    ):
        _check_unit_interval(label, values)
    for label, sens, spec in (("leg1", sens1, spec1), ("leg2", sens2, spec2)):
        if np.any(sens + (1.0 - spec) <= 0):
            raise DomainError(
                f"{label} can never produce positive evidence in at "
                f"least one scenario"
            )

    n_scenarios = prior.shape[0]
    # Same arithmetic as _split_assumption / private_for, vectorised.
    shared1 = 1.0 - dep * (1.0 - v1)
    shared2 = 1.0 - dep * (1.0 - v2)
    p_shared = np.minimum(shared1, shared2)
    safe_shared = np.where(p_shared > 0, p_shared, 1.0)
    private1 = np.where(
        p_shared > 0, np.minimum(v1 / safe_shared, 1.0), 1.0
    )
    private2 = np.where(
        p_shared > 0, np.minimum(v2 / safe_shared, 1.0), 1.0
    )

    planes = {
        "claim": np.stack([prior, 1.0 - prior], axis=1),
        "shared_underpinning": np.stack([p_shared, 1.0 - p_shared], axis=1),
    }
    for name, private in (
        ("assumptions_leg1", private1), ("assumptions_leg2", private2)
    ):
        plane = np.zeros((n_scenarios, 2, 2))
        plane[:, 0, 0] = private
        plane[:, 0, 1] = 1.0 - private
        plane[:, 1, 1] = 1.0
        planes[name] = plane
    for name, sens, spec, noise in (
        ("evidence_leg1", sens1, spec1, noise1),
        ("evidence_leg2", sens2, spec2, noise2),
    ):
        plane = np.empty((n_scenarios, 2, 2, 2))
        plane[:, 0, 0, 0] = sens
        plane[:, 0, 0, 1] = 1.0 - sens
        plane[:, 1, 0, 0] = 1.0 - spec
        plane[:, 1, 0, 1] = spec
        plane[:, 0, 1, 0] = noise
        plane[:, 0, 1, 1] = 1.0 - noise
        plane[:, 1, 1, 0] = noise
        plane[:, 1, 1, 1] = 1.0 - noise
        planes[name] = plane
    return planes


def two_leg_posterior_sweep(
    priors,
    dependences,
    leg1_validity, leg1_sensitivity, leg1_specificity, leg1_noise,
    leg2_validity, leg2_sensitivity, leg2_specificity, leg2_noise,
) -> Dict[str, np.ndarray]:
    """Vectorised :func:`two_leg_posterior` over parameter arrays.

    One batched elimination pass over the shared compiled structure
    answers every scenario's two queries; the returned mapping carries
    ``(S,)`` columns ``single_leg`` / ``both_legs`` / ``gain`` /
    ``doubt_reduction``, each matching the scalar :class:`TwoLegResult`
    to 1e-12.
    """
    planes = two_leg_cpt_planes(
        priors, dependences,
        leg1_validity, leg1_sensitivity, leg1_specificity, leg1_noise,
        leg2_validity, leg2_sensitivity, leg2_specificity, leg2_noise,
    )
    template = _two_leg_template()
    both = template.query_batch(
        "claim", {"evidence_leg1": "true", "evidence_leg2": "true"}, planes
    )[:, 0]
    single = template.query_batch(
        "claim", {"evidence_leg1": "true"}, planes
    )[:, 0]
    both_doubt = 1.0 - both
    doubt_reduction = np.where(
        both_doubt <= 0,
        np.inf,
        (1.0 - single) / np.where(both_doubt <= 0, 1.0, both_doubt),
    )
    return {
        "single_leg": single,
        "both_legs": both,
        "gain": both - single,
        "doubt_reduction": doubt_reduction,
    }


def diversity_gain(
    prior_claim: float,
    leg1: ArgumentLeg,
    leg2: ArgumentLeg,
    dependences: Optional[list] = None,
) -> list:
    """Sweep the dependence dial; return :class:`TwoLegResult` per point.

    The expected shape (checked by experiment E10): the two-leg gain is
    largest at independence and decays as the legs share underpinnings.
    """
    points = (
        dependences if dependences is not None else linear_grid(0.0, 1.0, 11)
    )
    return [
        two_leg_posterior(prior_claim, leg1, leg2, float(d)) for d in points
    ]
