"""Builders bridging dependability cases and argument graphs.

Convenience constructors for the common argument shapes the paper
discusses: a single-leg case (one goal, one strategy, one solution, its
assumptions) and a two-leg case ("argument fault-tolerance" per [9, 10]).
"""

from __future__ import annotations

from typing import Optional

from ..core.case import DependabilityCase
from ..errors import DomainError
from .graph import ArgumentGraph
from .legs import ArgumentLeg
from .nodes import Assumption, Context, Goal, Solution, Strategy

__all__ = ["single_leg_graph", "two_leg_graph", "case_to_graph"]


def single_leg_graph(
    claim_text: str,
    claim_bound: float,
    leg: ArgumentLeg,
    evidence_text: str = "supporting evidence",
    evidence_kind: str = "testing",
) -> ArgumentGraph:
    """A one-leg argument: goal <- strategy <- solution, with assumption."""
    graph = ArgumentGraph()
    goal = Goal("G1", claim_text, claim_bound=claim_bound)
    strategy = Strategy("S1", f"argument by {leg.name}")
    solution = Solution("Sn1", evidence_text, evidence_kind=evidence_kind)
    assumption = Assumption(
        "A1",
        f"assumptions of {leg.name} hold",
        probability_true=leg.assumption_validity,
    )
    graph.add_node(goal).add_node(strategy).add_node(solution).add_node(assumption)
    graph.add_support("G1", "S1").add_support("S1", "Sn1")
    graph.annotate("S1", "A1")
    graph.validate()
    return graph


def two_leg_graph(
    claim_text: str,
    claim_bound: float,
    leg1: ArgumentLeg,
    leg2: ArgumentLeg,
    context_text: Optional[str] = None,
) -> ArgumentGraph:
    """A two-leg ("argument fault-tolerance") argument graph."""
    if leg1.name == leg2.name:
        raise DomainError("the two legs must be distinct lines of argument")
    graph = ArgumentGraph()
    goal = Goal("G1", claim_text, claim_bound=claim_bound)
    graph.add_node(goal)
    if context_text:
        graph.add_node(Context("C1", context_text))
        graph.annotate("G1", "C1")
    for index, leg in enumerate((leg1, leg2), start=1):
        strategy = Strategy(f"S{index}", f"leg {index}: argument by {leg.name}")
        solution = Solution(
            f"Sn{index}", f"evidence from {leg.name}", evidence_kind=leg.name
        )
        assumption = Assumption(
            f"A{index}",
            f"assumptions of {leg.name} hold",
            probability_true=leg.assumption_validity,
        )
        graph.add_node(strategy).add_node(solution).add_node(assumption)
        graph.add_support("G1", f"S{index}")
        graph.add_support(f"S{index}", f"Sn{index}")
        graph.annotate(f"S{index}", f"A{index}")
    graph.validate()
    return graph


def case_to_graph(case: DependabilityCase) -> ArgumentGraph:
    """Render a :class:`~repro.core.case.DependabilityCase` as a graph.

    Produces a flat one-strategy argument listing the case's evidence as
    solutions and its assumptions as annotations — a starting skeleton for
    structuring, not a finished argument.
    """
    graph = ArgumentGraph()
    goal = Goal("G1", f"{case.system}: {case.claim}", claim_bound=case.claim_bound)
    strategy = Strategy("S1", "direct appeal to the assembled evidence")
    graph.add_node(goal).add_node(strategy).add_support("G1", "S1")
    if not case.evidence:
        raise DomainError("case has no evidence to structure into a graph")
    for index, item in enumerate(case.evidence, start=1):
        solution = Solution(
            f"Sn{index}", f"{item.name}: {item.description or item.kind}",
            evidence_kind=item.kind,
        )
        graph.add_node(solution).add_support("S1", f"Sn{index}")
    for index, assumption in enumerate(case.assumptions, start=1):
        node = Assumption(
            f"A{index}", assumption.name,
            probability_true=assumption.probability_true,
        )
        graph.add_node(node).annotate("S1", f"A{index}")
    graph.validate()
    return graph
