"""Argument graph node types (GSN-flavoured).

A dependability argument decomposes a top claim (goal) through strategies
into sub-goals, grounded in solutions (evidence) and resting on
assumptions and context.  These node types follow the Goal Structuring
Notation vocabulary loosely; the quantitative semantics (doubt, leg
confidence) attach in :mod:`repro.arguments.legs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import DomainError

__all__ = ["Goal", "Strategy", "Solution", "Assumption", "Context", "NODE_TYPES"]


@dataclass(frozen=True)
class _Node:
    """Common identity for argument nodes."""

    identifier: str
    text: str

    def __post_init__(self):
        if not self.identifier:
            raise DomainError("argument node needs a non-empty identifier")
        if not self.text:
            raise DomainError(f"node {self.identifier!r} needs descriptive text")

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()


@dataclass(frozen=True)
class Goal(_Node):
    """A claim to be supported (e.g. "pfd < 1e-3")."""

    claim_bound: Optional[float] = None

    def __post_init__(self):
        super().__post_init__()
        if self.claim_bound is not None and not 0 < self.claim_bound <= 1:
            raise DomainError(
                f"goal claim bound must lie in (0, 1], got {self.claim_bound}"
            )


@dataclass(frozen=True)
class Strategy(_Node):
    """How a goal is decomposed (e.g. "argument over test + analysis legs")."""


@dataclass(frozen=True)
class Solution(_Node):
    """An item of evidence grounding the argument (test report, proof...)."""

    evidence_kind: str = "unspecified"


@dataclass(frozen=True)
class Assumption(_Node):
    """An assumption, with the assessor's probability that it holds.

    The paper (Section 1) identifies assumption doubt as the neglected
    uncertainty in dependability cases; making it a first-class, quantified
    node is the point of this package.
    """

    probability_true: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        if not 0 <= self.probability_true <= 1:
            raise DomainError(
                f"assumption probability must lie in [0, 1], got "
                f"{self.probability_true}"
            )

    @property
    def doubt(self) -> float:
        return 1.0 - self.probability_true


@dataclass(frozen=True)
class Context(_Node):
    """Contextual statement scoping the argument (environment, usage)."""


NODE_TYPES = (Goal, Strategy, Solution, Assumption, Context)
