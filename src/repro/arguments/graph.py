"""The argument graph: structure, validation, rendering.

An :class:`ArgumentGraph` is a DAG whose edges run from a supported node to
its supporting nodes (goal -> strategy -> sub-goal -> solution), with
assumptions and context attached anywhere.  Validation enforces the GSN
well-formedness rules that matter for quantification: a single root goal,
every goal eventually grounded in solutions, no dangling strategies.
"""

from __future__ import annotations

from typing import Dict, List, Union

import networkx as nx

from ..errors import StructureError
from .nodes import Assumption, Context, Goal, Solution, Strategy

__all__ = ["ArgumentGraph"]

AnyNode = Union[Goal, Strategy, Solution, Assumption, Context]

#: Which node kinds may support which (edge: supported -> supporting).
_ALLOWED_SUPPORT = {
    "goal": {"strategy", "solution", "goal"},
    "strategy": {"goal", "solution"},
}
#: Node kinds that may be annotated onto goals/strategies.
_ANNOTATION_KINDS = {"assumption", "context"}


class ArgumentGraph:
    """A structured dependability argument."""

    def __init__(self):
        self._nodes: Dict[str, AnyNode] = {}
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_node(self, node: AnyNode) -> "ArgumentGraph":
        if node.identifier in self._nodes:
            raise StructureError(f"duplicate node id {node.identifier!r}")
        self._nodes[node.identifier] = node
        self._graph.add_node(node.identifier)
        return self

    def add_support(self, supported_id: str, supporting_id: str) -> "ArgumentGraph":
        """Record that ``supporting`` supports ``supported``."""
        supported = self._require(supported_id)
        supporting = self._require(supporting_id)
        allowed = _ALLOWED_SUPPORT.get(supported.kind, set())
        if supporting.kind not in allowed:
            raise StructureError(
                f"a {supported.kind} cannot be supported by a "
                f"{supporting.kind} ({supported_id!r} <- {supporting_id!r})"
            )
        self._graph.add_edge(supported_id, supporting_id)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(supported_id, supporting_id)
            raise StructureError(
                f"support edge {supported_id!r} <- {supporting_id!r} creates "
                f"a cycle"
            )
        return self

    def annotate(self, target_id: str, annotation_id: str) -> "ArgumentGraph":
        """Attach an assumption or context node to a goal or strategy."""
        target = self._require(target_id)
        annotation = self._require(annotation_id)
        if annotation.kind not in _ANNOTATION_KINDS:
            raise StructureError(
                f"only assumptions/context annotate; got {annotation.kind}"
            )
        if target.kind not in ("goal", "strategy"):
            raise StructureError(
                f"annotations attach to goals or strategies, not {target.kind}"
            )
        self._graph.add_edge(target_id, annotation_id, annotation=True)
        return self

    def _require(self, identifier: str) -> AnyNode:
        if identifier not in self._nodes:
            raise StructureError(f"unknown node {identifier!r}")
        return self._nodes[identifier]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def node(self, identifier: str) -> AnyNode:
        return self._require(identifier)

    def supporters(self, identifier: str) -> List[AnyNode]:
        """Supporting (non-annotation) children of a node."""
        self._require(identifier)
        return [
            self._nodes[child]
            for child in self._graph.successors(identifier)
            if not self._graph.edges[identifier, child].get("annotation")
        ]

    def annotations(self, identifier: str) -> List[AnyNode]:
        """Assumption/context annotations of a node."""
        self._require(identifier)
        return [
            self._nodes[child]
            for child in self._graph.successors(identifier)
            if self._graph.edges[identifier, child].get("annotation")
        ]

    def assumptions_in_scope(self, identifier: str) -> List[Assumption]:
        """All assumptions reachable in the subtree under a node."""
        self._require(identifier)
        found = []
        for node_id in nx.descendants(self._graph, identifier) | {identifier}:
            node = self._nodes[node_id]
            if isinstance(node, Assumption):
                found.append(node)
        return sorted(found, key=lambda a: a.identifier)

    def topological_order(self) -> List[str]:
        """Node ids, supported nodes before their supporters.

        The order follows the support/annotation DAG (edges run from a
        supported node to its supporting nodes), so evaluating it in
        *reverse* visits every node after all its children — the walk
        the compiled case engine flattens once.
        """
        return list(nx.topological_sort(self._graph))

    def root_goal(self) -> Goal:
        """The unique top-level goal (raises if absent or ambiguous)."""
        roots = [
            self._nodes[name]
            for name in self._graph.nodes
            if self._graph.in_degree(name) == 0
            and isinstance(self._nodes[name], Goal)
        ]
        if len(roots) != 1:
            found = ", ".join(sorted(r.identifier for r in roots))
            raise StructureError(
                f"expected exactly one root goal, found {len(roots)}"
                + (f": {found}" if roots else "")
            )
        return roots[0]

    def validation_errors(self) -> List[str]:
        """All structural problems, offending node ids sorted.

        Each message lists *every* offending node in sorted order, so
        reports are deterministic across Python versions and runs.
        """
        errors: List[str] = []
        try:
            self.root_goal()
        except StructureError as exc:
            errors.append(str(exc))
        ungrounded = sorted(
            identifier
            for identifier, node in self._nodes.items()
            if isinstance(node, Goal) and not self._grounded(identifier)
        )
        if ungrounded:
            errors.append(
                "goals not grounded in any solution: "
                + ", ".join(ungrounded)
            )
        empty = sorted(
            identifier
            for identifier, node in self._nodes.items()
            if isinstance(node, Strategy) and not self.supporters(identifier)
        )
        if empty:
            errors.append(
                "strategies supporting nothing: " + ", ".join(empty)
            )
        dangling = sorted(
            identifier
            for identifier, node in self._nodes.items()
            if isinstance(node, Strategy)
            and self._graph.in_degree(identifier) == 0
        )
        if dangling:
            errors.append(
                "strategies hanging off no goal: " + ", ".join(dangling)
            )
        return errors

    def validate(self) -> None:
        """Structural well-formedness (raises :class:`StructureError`).

        * exactly one root goal;
        * every goal is grounded: some path from it reaches a solution;
        * every strategy supports something and is supported by something.

        All violations are gathered and reported together, with the
        offending node ids in sorted order.
        """
        errors = self.validation_errors()
        if errors:
            raise StructureError("; ".join(errors))

    def _grounded(self, identifier: str) -> bool:
        return any(
            isinstance(self._nodes[d], Solution)
            for d in nx.descendants(self._graph, identifier)
        )

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def render(self) -> str:
        """Indented text rendering from the root goal."""
        root = self.root_goal()
        lines: List[str] = []
        self._render_into(root.identifier, 0, lines, set())
        return "\n".join(lines)

    def _render_into(
        self, identifier: str, depth: int, lines: List[str], seen: set
    ) -> None:
        node = self._nodes[identifier]
        marker = {
            "goal": "G",
            "strategy": "S",
            "solution": "Sn",
            "assumption": "A",
            "context": "C",
        }[node.kind]
        suffix = ""
        if isinstance(node, Assumption):
            suffix = f" [P(true)={node.probability_true:.2%}]"
        if isinstance(node, Goal) and node.claim_bound is not None:
            suffix = f" [pfd < {node.claim_bound:g}]"
        lines.append("  " * depth + f"[{marker}] {node.identifier}: {node.text}{suffix}")
        if identifier in seen:
            lines.append("  " * (depth + 1) + "(shared subtree, elided)")
            return
        seen.add(identifier)
        for annotation in self.annotations(identifier):
            self._render_into(annotation.identifier, depth + 1, lines, seen)
        for supporter in self.supporters(identifier):
            self._render_into(supporter.identifier, depth + 1, lines, seen)

    def __len__(self) -> int:
        return len(self._nodes)
