"""Argument structures: GSN graphs, quantified legs, multi-leg combination."""

from .graph import ArgumentGraph
from .gsn import case_to_graph, single_leg_graph, two_leg_graph
from .legs import ArgumentLeg, single_leg_posterior
from .multileg import (
    TwoLegResult,
    build_two_leg_network,
    diversity_gain,
    two_leg_posterior,
)
from .nodes import Assumption, Context, Goal, Solution, Strategy

__all__ = [
    "ArgumentGraph",
    "case_to_graph",
    "single_leg_graph",
    "two_leg_graph",
    "ArgumentLeg",
    "single_leg_posterior",
    "TwoLegResult",
    "build_two_leg_network",
    "diversity_gain",
    "two_leg_posterior",
    "Assumption",
    "Context",
    "Goal",
    "Solution",
    "Strategy",
]
