"""Argument structures: GSN graphs, quantified legs and whole cases.

Structure lives in :class:`ArgumentGraph`; quantitative semantics attach
per node through :mod:`repro.arguments.quantified` (leaf confidence
models on solutions, combination rules on goals/strategies, assumption
discounting), and :mod:`repro.arguments.compiled` lowers a quantified
case once for vectorized whole-case scenario sweeps.
"""

from .compiled import CompiledCase, clear_case_caches, compile_case, load_case
from .graph import ArgumentGraph
from .gsn import case_to_graph, single_leg_graph, two_leg_graph
from .legs import ArgumentLeg, single_leg_posterior
from .multileg import (
    TwoLegResult,
    build_two_leg_network,
    diversity_gain,
    two_leg_cpt_planes,
    two_leg_posterior,
    two_leg_posterior_sweep,
)
from .nodes import Assumption, Context, Goal, Solution, Strategy
from .quantified import (
    MODEL_KINDS,
    BetaFactor1oo2,
    FixedConfidence,
    IndependentProduct,
    LegEvidence,
    LognormalClaim,
    NodeModel,
    NoisySupport,
    Passthrough,
    QuantifiedCase,
    TwoLegBBN,
    model_from_dict,
)

__all__ = [
    "ArgumentGraph",
    "case_to_graph",
    "single_leg_graph",
    "two_leg_graph",
    "ArgumentLeg",
    "single_leg_posterior",
    "TwoLegResult",
    "build_two_leg_network",
    "diversity_gain",
    "two_leg_posterior",
    "two_leg_posterior_sweep",
    "two_leg_cpt_planes",
    "Assumption",
    "Context",
    "Goal",
    "Solution",
    "Strategy",
    "NodeModel",
    "FixedConfidence",
    "LognormalClaim",
    "LegEvidence",
    "IndependentProduct",
    "BetaFactor1oo2",
    "NoisySupport",
    "TwoLegBBN",
    "Passthrough",
    "MODEL_KINDS",
    "model_from_dict",
    "QuantifiedCase",
    "CompiledCase",
    "compile_case",
    "load_case",
    "clear_case_caches",
]
