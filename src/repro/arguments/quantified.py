"""Quantified dependability cases: confidence models on GSN nodes.

The paper's central object is the *assembled* case: an argument graph
whose node confidences combine — with dependence — into a top-goal
claim.  This module attaches quantitative semantics to an
:class:`~repro.arguments.graph.ArgumentGraph`:

* **leaf models** on solutions turn evidence into a confidence:
  ``fixed`` (a stipulated probability), ``lognormal_claim`` (the
  one-sided confidence a (mode, sigma) log-normal judgement puts on a
  claim bound — the Section 3 route) and ``leg_evidence`` (the
  Section 4.2 single-leg Bayes posterior);
* **combination rules** on goals/strategies fold supporter confidences
  upward: ``independent_and`` (independent product), ``beta_factor_1oo2``
  (doubt combined through a common-cause beta factor),
  ``noisy_support`` (noisy-OR of partially sufficient legs) and
  ``two_leg_bbn`` (the full Section 4.2 two-leg Bayesian-network
  fragment, supporter confidences acting as the legs' assumption
  validities);
* **assumption discounting**: every assumption annotated on a node
  multiplies that node's confidence by ``P(assumption holds)`` — the
  neglected uncertainty the paper makes first-class.

Every quantified parameter is *sweepable*: it is addressed as
``"<node id>.<parameter>"`` (assumptions expose ``"<id>.p_true"``) and
can be overridden per evaluation, which is what lets the engine's
``case_confidence`` pipeline drive whole-case scenario sweeps.

:meth:`QuantifiedCase.evaluate` walks the graph recursively node by
node — the exact, readable reference semantics.  The hot path lives in
:mod:`repro.arguments.compiled`, which lowers a case once into flat
topo-ordered arrays and evaluates all scenarios in one vectorized pass;
the recursion here is kept as its 1e-12 oracle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import DomainError, StructureError
from .graph import ArgumentGraph
from .legs import ArgumentLeg, single_leg_posterior
from .multileg import two_leg_posterior, two_leg_posterior_sweep
from .nodes import Assumption, Context, Goal, Solution, Strategy

__all__ = [
    "NodeModel",
    "FixedConfidence",
    "LognormalClaim",
    "LegEvidence",
    "IndependentProduct",
    "BetaFactor1oo2",
    "NoisySupport",
    "TwoLegBBN",
    "Passthrough",
    "MODEL_KINDS",
    "model_from_dict",
    "QuantifiedCase",
]

_NODE_KINDS = {
    "goal": Goal,
    "strategy": Strategy,
    "solution": Solution,
    "assumption": Assumption,
    "context": Context,
}


@dataclass(frozen=True)
class NodeModel:
    """Base class: a named confidence model with float parameters.

    The dataclass fields *are* the parameter schema: they are exposed as
    ``"<node>.<field>"`` sweep parameters, round-trip through dicts, and
    arrive at :meth:`evaluate` / :meth:`evaluate_batch` as a name ->
    value mapping (scalars for the oracle, ``(S,)`` arrays for the
    compiled path).
    """

    #: registry key; subclasses override.  These are plain class
    #: attributes (not annotated), so they are not dataclass fields and
    #: stay out of the parameter schema.
    kind = ""
    #: True for models that quantify solutions (no supporters).
    leaf = False
    #: (min, max) supporter count; max None = unbounded.
    arity = (0, 0)
    #: True when :meth:`evaluate_batch` is elementwise over the scenario
    #: axis, so same-kind sibling nodes can evaluate as one flattened
    #: ``(G*S,)`` call with identical results (the compiled case
    #: engine's fused plan relies on this).
    fusable = True

    @classmethod
    def param_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    def params(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.param_names()}

    def to_dict(self) -> Dict[str, Any]:
        return {"model": self.kind, **self.params()}

    def validate_params(self, params: Mapping[str, float]) -> List[str]:
        """Range errors for a parameter binding (empty when valid)."""
        return [
            f"{name} must lie in [0, 1], got {params[name]}"
            for name in self.param_names()
            if not 0 <= params[name] <= 1
        ]

    def validate_batch_params(
        self, params: Mapping[str, np.ndarray]
    ) -> None:
        """Vectorised range check over ``(S,)`` parameter columns."""
        for name in self.param_names():
            values = np.asarray(params[name], dtype=float)
            if np.any((values < 0) | (values > 1)):
                raise DomainError(
                    f"{name} must lie in [0, 1] for every scenario"
                )

    def evaluate(
        self, params: Mapping[str, float], children: Sequence[float]
    ) -> float:
        """Scalar node confidence from parameters and child confidences."""
        raise NotImplementedError

    def evaluate_batch(
        self, params: Mapping[str, np.ndarray], children: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`evaluate`: ``(S,)`` out of ``(k, S)`` children.

        Must mirror the scalar path elementwise to 1e-12 (the compiled
        case engine's contract).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class FixedConfidence(NodeModel):
    """A stipulated leaf confidence (audit stub / expert fiat)."""

    confidence: float = 1.0

    kind = "fixed"
    leaf = True

    def evaluate(self, params, children):
        return float(params["confidence"])

    def evaluate_batch(self, params, children):
        return np.asarray(params["confidence"], dtype=float)


@dataclass(frozen=True)
class LognormalClaim(NodeModel):
    """Confidence a (mode, sigma) log-normal judgement puts on a bound."""

    mode: float = 0.003
    sigma: float = 0.9
    bound: float = 1e-2

    kind = "lognormal_claim"
    leaf = True

    def validate_params(self, params):
        errors = []
        for name in ("mode", "sigma", "bound"):
            if params[name] <= 0:
                errors.append(f"{name} must be positive, got {params[name]}")
        return errors

    def validate_batch_params(self, params):
        for name in ("mode", "sigma", "bound"):
            if np.any(np.asarray(params[name], dtype=float) <= 0):
                raise DomainError(
                    f"{name} must be positive for every scenario"
                )

    def evaluate(self, params, children):
        from ..distributions import LogNormalJudgement

        judgement = LogNormalJudgement.from_mode_sigma(
            params["mode"], params["sigma"]
        )
        return float(judgement.confidence(params["bound"]))

    def evaluate_batch(self, params, children):
        from ..engine.kernels import lognormal_confidence, lognormal_mu_from_mode

        mu = lognormal_mu_from_mode(params["mode"], params["sigma"])
        return lognormal_confidence(mu, params["sigma"], params["bound"])


@dataclass(frozen=True)
class LegEvidence(NodeModel):
    """The single-leg Bayes posterior (Section 4.2, one leg)."""

    prior: float = 0.5
    validity: float = 0.9
    sensitivity: float = 0.9
    specificity: float = 0.9
    noise: float = 0.5

    kind = "leg_evidence"
    leaf = True

    def evaluate(self, params, children):
        leg = ArgumentLeg(
            "leg", params["validity"], params["sensitivity"],
            params["specificity"], params["noise"],
        )
        return single_leg_posterior(params["prior"], leg)

    def evaluate_batch(self, params, children):
        prior = np.asarray(params["prior"], dtype=float)
        validity = np.asarray(params["validity"], dtype=float)
        sensitivity = np.asarray(params["sensitivity"], dtype=float)
        specificity = np.asarray(params["specificity"], dtype=float)
        noise = np.asarray(params["noise"], dtype=float)
        if np.any(sensitivity + (1.0 - specificity) <= 0):
            raise DomainError("leg can never produce positive evidence")
        lik_true = validity * sensitivity + (1.0 - validity) * noise
        lik_false = (
            validity * (1.0 - specificity) + (1.0 - validity) * noise
        )
        numerator = prior * lik_true
        denominator = numerator + (1.0 - prior) * lik_false
        if np.any(denominator <= 0):
            raise DomainError("evidence has zero probability under the model")
        return numerator / denominator


@dataclass(frozen=True)
class IndependentProduct(NodeModel):
    """All supporting claims must hold, independently (product rule)."""

    kind = "independent_and"
    arity = (1, None)

    def evaluate(self, params, children):
        confidence = 1.0
        for child in children:
            confidence = confidence * child
        return confidence

    def evaluate_batch(self, params, children):
        confidence = np.ones(children.shape[1])
        for row in children:
            confidence = confidence * row
        return confidence


@dataclass(frozen=True)
class BetaFactor1oo2(NodeModel):
    """Two redundant legs with common-cause doubt (beta-factor 1oo2).

    A fraction ``beta`` of the remaining doubt is common to both legs
    (the worse leg's doubt bounds it); the rest fails independently:
    ``doubt = beta * max(d1, d2) + (1 - beta) * d1 * d2``.  At
    ``beta = 0`` the legs are independent; at ``beta = 1`` the pair is
    exactly as doubtful as its weaker leg — the paper's warning that
    dependence erodes the benefit of a second leg, in closed form.
    """

    beta: float = 0.1

    kind = "beta_factor_1oo2"
    arity = (2, 2)

    def evaluate(self, params, children):
        beta = params["beta"]
        doubt1, doubt2 = 1.0 - children[0], 1.0 - children[1]
        doubt = beta * max(doubt1, doubt2) + (1.0 - beta) * doubt1 * doubt2
        return 1.0 - doubt

    def evaluate_batch(self, params, children):
        beta = np.asarray(params["beta"], dtype=float)
        doubt1, doubt2 = 1.0 - children[0], 1.0 - children[1]
        doubt = (
            beta * np.maximum(doubt1, doubt2)
            + (1.0 - beta) * doubt1 * doubt2
        )
        return 1.0 - doubt


@dataclass(frozen=True)
class NoisySupport(NodeModel):
    """Noisy-OR over partially sufficient legs.

    Each supporter establishes the claim with probability ``weight``
    when its own claim holds; the claim fails only if every leg does:
    ``confidence = 1 - prod(1 - weight * c_i)``.
    """

    weight: float = 1.0

    kind = "noisy_support"
    arity = (1, None)

    def evaluate(self, params, children):
        weight = params["weight"]
        miss = 1.0
        for child in children:
            miss = miss * (1.0 - weight * child)
        return 1.0 - miss

    def evaluate_batch(self, params, children):
        weight = np.asarray(params["weight"], dtype=float)
        miss = np.ones(children.shape[1])
        for row in children:
            miss = miss * (1.0 - weight * row)
        return 1.0 - miss


@dataclass(frozen=True)
class TwoLegBBN(NodeModel):
    """The full Section 4.2 two-leg Bayesian-network fragment.

    The node's two supporter confidences act as the legs' assumption
    validities — the subtree under each leg argues that the leg's
    underpinnings hold — and the fragment's own parameters give the
    claim prior, the evidence strengths and the dependence between the
    legs' assumptions.  The confidence is ``P(claim | both legs
    passed)``, computed exactly on the shared compiled network.
    """

    prior: float = 0.5
    dependence: float = 0.0
    sensitivity1: float = 0.9
    specificity1: float = 0.9
    noise1: float = 0.5
    sensitivity2: float = 0.9
    specificity2: float = 0.9
    noise2: float = 0.5

    kind = "two_leg_bbn"
    arity = (2, 2)
    #: The batched path runs an einsum contraction per call, not an
    #: elementwise map — keep per-node dispatch so outputs stay
    #: bit-identical to the unfused engine.
    fusable = False

    def evaluate(self, params, children):
        leg1 = ArgumentLeg(
            "leg1", children[0], params["sensitivity1"],
            params["specificity1"], params["noise1"],
        )
        leg2 = ArgumentLeg(
            "leg2", children[1], params["sensitivity2"],
            params["specificity2"], params["noise2"],
        )
        result = two_leg_posterior(
            params["prior"], leg1, leg2, params["dependence"]
        )
        return result.both_legs

    def evaluate_batch(self, params, children):
        columns = two_leg_posterior_sweep(
            params["prior"], params["dependence"],
            children[0], params["sensitivity1"],
            params["specificity1"], params["noise1"],
            children[1], params["sensitivity2"],
            params["specificity2"], params["noise2"],
        )
        return columns["both_legs"]


@dataclass(frozen=True)
class Passthrough(NodeModel):
    """Single-supporter identity — the implicit default combinator."""

    kind = "passthrough"
    arity = (1, 1)

    def evaluate(self, params, children):
        return children[0]

    def evaluate_batch(self, params, children):
        return children[0]


def _as_number(value: Any, label: str) -> float:
    """Coerce a spec value to float, reporting failures as DomainError."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DomainError(f"{label} must be a number, got {value!r}")
    return float(value)


MODEL_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        FixedConfidence, LognormalClaim, LegEvidence, IndependentProduct,
        BetaFactor1oo2, NoisySupport, TwoLegBBN, Passthrough,
    )
}


def model_from_dict(data: Mapping[str, Any]) -> NodeModel:
    """Instantiate a node model from its ``{"model": kind, ...}`` dict."""
    if not isinstance(data, Mapping) or "model" not in data:
        raise DomainError("quantification needs a 'model' entry")
    kind = data["model"]
    cls = MODEL_KINDS.get(kind)
    if cls is None:
        raise DomainError(
            f"unknown quantification model {kind!r}; available: "
            f"{', '.join(sorted(MODEL_KINDS))}"
        )
    unknown = set(data) - {"model"} - set(cls.param_names())
    if unknown:
        raise DomainError(
            f"model {kind!r} got unknown parameters: "
            f"{', '.join(sorted(unknown))}"
        )
    values = {}
    for name in data:
        if name == "model":
            continue
        values[name] = _as_number(data[name], f"model {kind!r} parameter {name!r}")
    return cls(**values)


class QuantifiedCase:
    """An argument graph with quantifications attached to its nodes.

    ``quantifications`` maps node ids to :class:`NodeModel` instances;
    solutions take leaf models, goals/strategies take combination rules
    (single-supporter nodes default to :class:`Passthrough`).  The whole
    object round-trips through plain dicts (and therefore YAML/JSON
    files), and :meth:`evaluate` computes every node's confidence by
    recursion — the reference semantics the compiled engine reproduces.
    """

    def __init__(
        self,
        graph: ArgumentGraph,
        quantifications: Mapping[str, NodeModel],
        name: Optional[str] = None,
        validate: bool = True,
    ):
        self.graph = graph
        self.quantifications = dict(quantifications)
        self.name = name
        # Lazy memos (the case is immutable once built): the parameter
        # space and content hash are probed once per *scenario* by the
        # sweep machinery, so recomputing them would put a graph
        # traversal / JSON dump in the hot path.
        self._parameter_defaults: Optional[Dict[str, float]] = None
        self._content_hash: Optional[str] = None
        if validate:
            self.validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validation_errors(self) -> List[str]:
        """All structural/quantification problems, ids sorted."""
        errors = list(self.graph.validation_errors())
        graph = self.graph
        known = {
            identifier
            for identifier in graph.topological_order()
        }
        unknown = sorted(set(self.quantifications) - known)
        if unknown:
            errors.append(
                "quantifications for unknown nodes: " + ", ".join(unknown)
            )
        unquantified: List[str] = []
        misplaced: List[str] = []
        bad_arity: List[str] = []
        bad_params: List[str] = []
        for identifier in sorted(known):
            node = graph.node(identifier)
            model = self.quantifications.get(identifier)
            if node.kind == "solution":
                if model is None:
                    unquantified.append(identifier)
                elif not model.leaf:
                    misplaced.append(identifier)
            elif node.kind in ("goal", "strategy"):
                supporters = graph.supporters(identifier)
                if model is None:
                    if len(supporters) > 1:
                        unquantified.append(identifier)
                    continue
                if model.leaf:
                    misplaced.append(identifier)
                    continue
                low, high = model.arity
                if len(supporters) < low or (
                    high is not None and len(supporters) > high
                ):
                    bad_arity.append(identifier)
            elif model is not None:
                misplaced.append(identifier)
            if model is not None:
                for problem in model.validate_params(model.params()):
                    bad_params.append(f"{identifier}: {problem}")
        if unquantified:
            errors.append(
                "nodes missing a quantification: " + ", ".join(unquantified)
            )
        if misplaced:
            errors.append(
                "quantification model kind does not fit the node: "
                + ", ".join(misplaced)
            )
        if bad_arity:
            errors.append(
                "combination rule arity does not match the supporters: "
                + ", ".join(bad_arity)
            )
        errors.extend(sorted(bad_params))
        return errors

    def validate(self) -> None:
        errors = self.validation_errors()
        if errors:
            raise StructureError("; ".join(errors))

    # ------------------------------------------------------------------ #
    # Parameter space
    # ------------------------------------------------------------------ #

    def parameter_defaults(self) -> Dict[str, float]:
        """Every sweepable parameter as ``"<node>.<name>" -> default``.

        Quantification parameters come from the node models; every
        assumption node additionally exposes ``"<id>.p_true"``, so
        assumption doubt — the paper's neglected uncertainty — is
        sweepable like any other dial.
        """
        if self._parameter_defaults is not None:
            return dict(self._parameter_defaults)
        space: Dict[str, float] = {}
        for identifier in sorted(self.quantifications):
            model = self.quantifications[identifier]
            for name, value in model.params().items():
                space[f"{identifier}.{name}"] = float(value)
        for identifier in self.graph.topological_order():
            node = self.graph.node(identifier)
            if isinstance(node, Assumption):
                space[f"{identifier}.p_true"] = float(node.probability_true)
        self._parameter_defaults = dict(sorted(space.items()))
        return dict(self._parameter_defaults)

    def assumption_addresses(self) -> List[str]:
        """The ``"<id>.p_true"`` parameters of every assumption node.

        Assumption probabilities sit outside any node model's schema, so
        range checks on overridden values key off this list (node
        *defaults* are validated by ``Assumption.__post_init__``).
        """
        return [
            f"{identifier}.p_true"
            for identifier in self.graph.topological_order()
            if isinstance(self.graph.node(identifier), Assumption)
        ]

    def _model_for(self, identifier: str) -> Optional[NodeModel]:
        model = self.quantifications.get(identifier)
        if model is None:
            node = self.graph.node(identifier)
            if node.kind in ("goal", "strategy"):
                if len(self.graph.supporters(identifier)) == 1:
                    return _PASSTHROUGH
            return None
        return model

    # ------------------------------------------------------------------ #
    # Evaluation (the recursive oracle)
    # ------------------------------------------------------------------ #

    def evaluate(
        self, overrides: Optional[Mapping[str, float]] = None
    ) -> Dict[str, float]:
        """Node id -> confidence under a parameter binding.

        ``overrides`` replaces parameter defaults by their
        ``"<node>.<name>"`` address (unknown names are rejected, sorted).
        Shared subtrees are evaluated once.  This per-node recursion is
        the exact reference; sweeps should go through
        :class:`repro.arguments.compiled.CompiledCase`, which must match
        it to 1e-12.
        """
        params = self.parameter_defaults()
        if overrides:
            unknown = sorted(set(overrides) - set(params))
            if unknown:
                raise DomainError(
                    f"unknown case parameters: {', '.join(unknown)}"
                )
            for name, value in overrides.items():
                params[name] = float(value)
            for address in self.assumption_addresses():
                if not 0 <= params[address] <= 1:
                    raise DomainError(
                        f"{address} must lie in [0, 1], got "
                        f"{params[address]}"
                    )
        values: Dict[str, float] = {}
        self._evaluate_node(self.graph.root_goal().identifier, params, values)
        return values

    def top_confidence(
        self, overrides: Optional[Mapping[str, float]] = None
    ) -> float:
        """``P(top goal)`` under a parameter binding."""
        return self.evaluate(overrides)[self.graph.root_goal().identifier]

    def _evaluate_node(
        self,
        identifier: str,
        params: Mapping[str, float],
        values: Dict[str, float],
    ) -> float:
        if identifier in values:
            return values[identifier]
        model = self._model_for(identifier)
        if model is None:
            raise StructureError(
                f"node {identifier!r} has no quantification"
            )
        children = [
            self._evaluate_node(child.identifier, params, values)
            for child in self.graph.supporters(identifier)
        ]
        bound = {
            name: params[f"{identifier}.{name}"]
            for name in model.param_names()
        }
        problems = model.validate_params(bound)
        if problems:
            raise DomainError(
                f"{identifier}: " + "; ".join(sorted(problems))
            )
        confidence = model.evaluate(bound, children)
        for annotation in self.graph.annotations(identifier):
            if isinstance(annotation, Assumption):
                confidence = confidence * params[
                    f"{annotation.identifier}.p_true"
                ]
        values[identifier] = confidence
        return confidence

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        graph = self.graph
        nodes: List[Dict[str, Any]] = []
        support: List[List[str]] = []
        annotations: List[List[str]] = []
        for identifier in graph.topological_order():
            node = graph.node(identifier)
            entry: Dict[str, Any] = {
                "id": node.identifier, "kind": node.kind, "text": node.text,
            }
            if isinstance(node, Goal) and node.claim_bound is not None:
                entry["claim_bound"] = node.claim_bound
            if isinstance(node, Solution):
                entry["evidence_kind"] = node.evidence_kind
            if isinstance(node, Assumption):
                entry["probability_true"] = node.probability_true
            nodes.append(entry)
            for supporter in graph.supporters(identifier):
                support.append([identifier, supporter.identifier])
            for annotation in graph.annotations(identifier):
                annotations.append([identifier, annotation.identifier])
        out: Dict[str, Any] = {
            "nodes": nodes,
            "support": support,
            "annotations": annotations,
            "quantify": {
                identifier: self.quantifications[identifier].to_dict()
                for identifier in sorted(self.quantifications)
            },
        }
        if self.name is not None:
            out = {"name": self.name, **out}
        return out

    @staticmethod
    def _edge_pair(pair: Any, label: str) -> Tuple[str, str]:
        if (
            isinstance(pair, (str, bytes))
            or not isinstance(pair, Sequence)
            or len(pair) != 2
            or not all(isinstance(item, str) for item in pair)
        ):
            raise DomainError(
                f"{label} entries must be [from-id, to-id] pairs of node "
                f"ids, got {pair!r}"
            )
        return pair[0], pair[1]

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], validate: bool = True
    ) -> "QuantifiedCase":
        unknown = set(data) - {
            "name", "nodes", "support", "annotations", "quantify"
        }
        if unknown:
            raise DomainError(
                f"unknown case spec entries: {', '.join(sorted(unknown))}"
            )
        if "nodes" not in data or not data["nodes"]:
            raise DomainError("case spec needs a non-empty 'nodes' list")
        graph = ArgumentGraph()
        for entry in data["nodes"]:
            if not isinstance(entry, Mapping):
                raise DomainError("each node entry must be a mapping")
            missing = {"id", "kind", "text"} - set(entry)
            if missing:
                raise DomainError(
                    f"node entry missing keys: "
                    f"{', '.join(sorted(missing))}"
                )
            kind = entry["kind"]
            if kind not in _NODE_KINDS:
                raise DomainError(
                    f"unknown node kind {kind!r}; expected one of "
                    f"{', '.join(sorted(_NODE_KINDS))}"
                )
            identifier, text = entry["id"], entry["text"]
            if not isinstance(identifier, str) or not isinstance(text, str):
                raise DomainError(
                    f"node ids and text must be strings, got "
                    f"id={identifier!r}, text={text!r}"
                )
            extra = {
                key: entry[key]
                for key in entry
                if key not in ("id", "kind", "text")
            }
            allowed = {
                "goal": {"claim_bound"},
                "solution": {"evidence_kind"},
                "assumption": {"probability_true"},
            }.get(kind, set())
            bad = set(extra) - allowed
            if bad:
                raise DomainError(
                    f"node {identifier!r}: unknown entries "
                    f"{', '.join(sorted(bad))}"
                )
            for key in ("claim_bound", "probability_true"):
                if key in extra:
                    extra[key] = _as_number(
                        extra[key], f"node {identifier!r}: {key}"
                    )
            if "evidence_kind" in extra and not isinstance(
                extra["evidence_kind"], str
            ):
                raise DomainError(
                    f"node {identifier!r}: evidence_kind must be a string"
                )
            graph.add_node(_NODE_KINDS[kind](identifier, text, **extra))
        for pair in data.get("support", []) or []:
            supported, supporting = cls._edge_pair(pair, "support")
            graph.add_support(supported, supporting)
        for pair in data.get("annotations", []) or []:
            target, annotation = cls._edge_pair(pair, "annotations")
            graph.annotate(target, annotation)
        quantify = data.get("quantify", {}) or {}
        if not isinstance(quantify, Mapping):
            raise DomainError("'quantify' must map node ids to models")
        models = {
            identifier: model_from_dict(entry)
            for identifier, entry in quantify.items()
        }
        return cls(graph, models, name=data.get("name"), validate=validate)

    @classmethod
    def from_file(cls, path) -> "QuantifiedCase":
        """Load a case from a YAML or JSON file."""
        # Lazy import: the engine layer sits above arguments, so the
        # shared spec-text parser is pulled in only when files load.
        from ..engine.spec import parse_spec_text

        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        data = parse_spec_text(text, str(path))
        if not isinstance(data, Mapping):
            raise DomainError(f"case file {path} must contain a mapping")
        return cls.from_dict(data)

    def content_hash(self) -> str:
        """A stable digest of the full case content (structure + models)."""
        import hashlib

        if self._content_hash is None:
            payload = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":"),
                default=str,
            )
            self._content_hash = hashlib.sha256(
                payload.encode("utf-8")
            ).hexdigest()
        return self._content_hash

    def __repr__(self) -> str:
        return (
            f"QuantifiedCase({len(self.graph)} nodes, "
            f"{len(self.quantifications)} quantified)"
        )


_PASSTHROUGH = Passthrough()
