"""Quantitative argument legs.

An argument *leg* (paper Section 4.2, after [9, 10, 12]) is one line of
reasoning from evidence to a claim, resting on its own assumptions.  The
quantitative model of a leg used here:

* ``prior_claim`` — P(claim) before this leg's evidence is considered;
* the leg's evidence is a boolean observation (the testing passed, the
  proof went through);
* when the leg's assumptions hold, the evidence is informative:
  ``P(E | claim) = sensitivity`` and ``P(E | not claim) = 1 -
  specificity``;
* when they fail, the evidence says nothing: ``P(E | anything) =
  noise_rate``;
* ``assumption_validity`` — P(assumptions hold).

Single-leg posteriors follow from Bayes; the two-leg combination with
dependence between the legs' assumptions is built as an explicit Bayesian
network in :mod:`repro.arguments.multileg`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DomainError

__all__ = ["ArgumentLeg", "single_leg_posterior"]


@dataclass(frozen=True)
class ArgumentLeg:
    """One quantified argument leg."""

    name: str
    assumption_validity: float
    sensitivity: float
    specificity: float
    noise_rate: float = 0.5

    def __post_init__(self):
        if not self.name:
            raise DomainError("argument leg needs a name")
        for label, value in (
            ("assumption_validity", self.assumption_validity),
            ("sensitivity", self.sensitivity),
            ("specificity", self.specificity),
            ("noise_rate", self.noise_rate),
        ):
            if not 0 <= value <= 1:
                raise DomainError(f"{label} must lie in [0, 1], got {value}")
        if self.sensitivity + (1.0 - self.specificity) <= 0:
            raise DomainError("leg can never produce positive evidence")

    def likelihood_given_claim(self, claim_true: bool) -> float:
        """``P(E = passed | claim, marginalising the assumption)``."""
        informative = self.sensitivity if claim_true else 1.0 - self.specificity
        return (
            self.assumption_validity * informative
            + (1.0 - self.assumption_validity) * self.noise_rate
        )

    def likelihood_ratio(self) -> float:
        """Evidence strength ``P(E|claim) / P(E|not claim)`` (marginal)."""
        denominator = self.likelihood_given_claim(False)
        if denominator <= 0:
            return float("inf")
        return self.likelihood_given_claim(True) / denominator


def single_leg_posterior(prior_claim: float, leg: ArgumentLeg) -> float:
    """``P(claim | this leg's evidence passed)`` by Bayes.

    The assumption is marginalised: doubt about the assumptions dilutes
    the evidence toward uninformativeness, capping the confidence a single
    leg can deliver no matter how strong its raw evidence — the paper's
    motivation for multi-legged arguments.
    """
    if not 0 <= prior_claim <= 1:
        raise DomainError(f"prior must lie in [0, 1], got {prior_claim}")
    numerator = prior_claim * leg.likelihood_given_claim(True)
    denominator = numerator + (1.0 - prior_claim) * leg.likelihood_given_claim(False)
    if denominator <= 0:
        raise DomainError("evidence has zero probability under the model")
    return numerator / denominator
