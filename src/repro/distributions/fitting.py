"""Fitting judgement distributions to elicited constraints.

Experts rarely hand over a full distribution (the paper doubts they even
"have" one).  What they do state are fragments — a most-likely value, one
or two quantiles, a one-sided confidence.  This module turns those
fragments into concrete judgement distributions, and quantifies how well a
fit honours over-determined constraint sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import optimize as _sp_optimize

from ..errors import DomainError, FittingError, InconsistentBeliefError
from .base import JudgementDistribution
from .gamma import GammaJudgement
from .lognormal import LogNormalJudgement

__all__ = [
    "QuantileConstraint",
    "check_constraints",
    "fit_lognormal",
    "fit_gamma",
    "fit_best",
    "constraint_residuals",
]


@dataclass(frozen=True)
class QuantileConstraint:
    """An elicited statement ``P(X < value) = level``."""

    level: float
    value: float

    def __post_init__(self):
        if not 0 < self.level < 1:
            raise DomainError(f"constraint level must be in (0,1), got {self.level}")
        if self.value <= 0:
            raise DomainError(f"constraint value must be positive, got {self.value}")


def check_constraints(constraints: Sequence[QuantileConstraint]) -> List[QuantileConstraint]:
    """Validate a constraint set: distinct and co-monotone, else raise."""
    if not constraints:
        raise DomainError("need at least one quantile constraint")
    ordered = sorted(constraints, key=lambda c: c.level)
    for earlier, later in zip(ordered, ordered[1:]):
        if earlier.level == later.level and earlier.value != later.value:
            raise InconsistentBeliefError(
                f"two different values at the same level {earlier.level}"
            )
        if earlier.value > later.value:
            raise InconsistentBeliefError(
                "quantile values must be non-decreasing in level: "
                f"P(X<{earlier.value})={earlier.level} vs "
                f"P(X<{later.value})={later.level}"
            )
    return ordered


def constraint_residuals(
    dist: JudgementDistribution, constraints: Sequence[QuantileConstraint]
) -> np.ndarray:
    """Per-constraint error ``cdf(value) - level`` for a fitted judgement."""
    return np.array(
        [float(dist.cdf(c.value)) - c.level for c in constraints], dtype=float
    )


def fit_lognormal(
    constraints: Sequence[QuantileConstraint],
) -> LogNormalJudgement:
    """Fit a log-normal to quantile constraints.

    Two constraints are matched exactly; more are fitted by least squares
    on the probit scale (where the log-normal CDF is linear in ``ln x``).
    """
    ordered = check_constraints(constraints)
    if len(ordered) < 2:
        raise FittingError("a log-normal fit needs at least two constraints")
    if len(ordered) == 2:
        a, b = ordered
        return LogNormalJudgement.from_quantiles(a.level, a.value, b.level, b.value)
    from ..numerics import norm_ppf

    z = np.array([float(norm_ppf(c.level)) for c in ordered])
    lnx = np.array([np.log(c.value) for c in ordered])
    # ln x = mu + sigma * z  ->  linear regression of lnx on z.
    design = np.column_stack([np.ones_like(z), z])
    coef, *_rest = np.linalg.lstsq(design, lnx, rcond=None)
    mu, sigma = float(coef[0]), float(coef[1])
    if sigma <= 0:
        raise FittingError("constraints imply non-positive sigma")
    return LogNormalJudgement(mu, sigma)


def fit_gamma(constraints: Sequence[QuantileConstraint]) -> GammaJudgement:
    """Fit a gamma judgement to quantile constraints (>= 2) numerically."""
    ordered = check_constraints(constraints)
    if len(ordered) < 2:
        raise FittingError("a gamma fit needs at least two constraints")

    # Work in log-parameters to keep positivity unconstrained.
    def residuals(log_params: np.ndarray) -> np.ndarray:
        shape, scale = np.exp(log_params)
        dist = GammaJudgement(shape, scale)
        return constraint_residuals(dist, ordered)

    # Moment-flavoured start: median ~ shape*scale, spread from the ratio
    # of the extreme constraint values.
    mid = ordered[len(ordered) // 2].value
    ratio = ordered[-1].value / ordered[0].value
    shape0 = max(1.0 / np.log(max(ratio, 1.0 + 1e-6)) ** 2 * 4.0, 0.2)
    start = np.log([shape0, mid / shape0])
    sol = _sp_optimize.least_squares(residuals, start, xtol=1e-14, ftol=1e-14)
    if not sol.success:
        raise FittingError(f"gamma fit failed: {sol.message}")
    shape, scale = np.exp(sol.x)
    fitted = GammaJudgement(float(shape), float(scale))
    worst = float(np.max(np.abs(constraint_residuals(fitted, ordered))))
    if len(ordered) == 2 and worst > 1e-6:
        raise FittingError(
            f"gamma cannot match the two constraints (residual {worst:.2g})"
        )
    return fitted


def fit_best(
    constraints: Sequence[QuantileConstraint],
    families: Sequence[str] = ("lognormal", "gamma"),
) -> JudgementDistribution:
    """Fit each family and return the one with the smallest residual norm."""
    ordered = check_constraints(constraints)
    fitters = {"lognormal": fit_lognormal, "gamma": fit_gamma}
    best_dist = None
    best_norm = np.inf
    errors = []
    for name in families:
        if name not in fitters:
            raise DomainError(f"unknown family {name!r}")
        try:
            dist = fitters[name](ordered)
        except (FittingError, DomainError) as exc:
            errors.append(f"{name}: {exc}")
            continue
        norm = float(np.linalg.norm(constraint_residuals(dist, ordered)))
        if norm < best_norm:
            best_dist, best_norm = dist, norm
    if best_dist is None:
        raise FittingError("no family could fit the constraints: " + "; ".join(errors))
    return best_dist
