"""Truncated judgements — the paper's "cutting off the tail" (Section 4.1).

Operating experience or statistical testing can make high failure rates
untenable: the paper describes the judgement distribution being "modified
by the survival probability and renormalised", with hard truncation as the
idealised limit.  :class:`TruncatedJudgement` implements the idealised hard
cut-off; the graded survival-probability reweighting lives in
:mod:`repro.update.posterior` (both are compared by experiment E9).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import DomainError
from .base import JudgementDistribution

__all__ = ["TruncatedJudgement"]


class TruncatedJudgement(JudgementDistribution):
    """A judgement conditioned on ``lower <= X <= upper`` and renormalised."""

    def __init__(
        self,
        base: JudgementDistribution,
        upper: float,
        lower: float = 0.0,
    ):
        if lower < 0:
            raise DomainError("lower truncation point must be non-negative")
        if upper <= lower:
            raise DomainError(
                f"truncation requires lower < upper, got [{lower}, {upper}]"
            )
        mass = float(base.cdf(upper)) - float(base.cdf(lower))
        if mass <= 0:
            raise DomainError(
                "base judgement has no mass in the truncation window"
            )
        self._base = base
        self._lower = float(lower)
        self._upper = float(upper)
        self._mass = mass
        self._cdf_low = float(base.cdf(lower))

    @property
    def base(self) -> JudgementDistribution:
        return self._base

    @property
    def lower(self) -> float:
        return self._lower

    @property
    def upper(self) -> float:
        return self._upper

    @property
    def retained_mass(self) -> float:
        """Prior probability of the retained window (the survival mass)."""
        return self._mass

    @property
    def support(self) -> Tuple[float, float]:
        base_low, base_high = self._base.support
        return (max(base_low, self._lower), min(base_high, self._upper))

    def pdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        inside = (x_arr >= self._lower) & (x_arr <= self._upper)
        out = np.where(
            inside, np.asarray(self._base.pdf(x_arr), dtype=float) / self._mass, 0.0
        )
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out

    def cdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        raw = (np.asarray(self._base.cdf(np.clip(x_arr, self._lower, self._upper)),
                          dtype=float) - self._cdf_low) / self._mass
        out = np.clip(np.where(x_arr < self._lower, 0.0,
                               np.where(x_arr > self._upper, 1.0, raw)), 0.0, 1.0)
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out

    def __repr__(self) -> str:
        return (
            f"TruncatedJudgement(base={self._base!r}, "
            f"window=[{self._lower:.4g}, {self._upper:.4g}])"
        )
