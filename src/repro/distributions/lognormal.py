"""The paper's log-normal judgement model (Section 3.1).

The paper models an assessor's judgement of a dangerous failure rate or pfd
as log-normal, parameterised two ways:

* the standard ``(mu, sigma)`` of ``ln(lambda)``;
* the paper's ``(lmean, lmode)`` — natural logs of the *mean* and the
  *mode* (peak).  From ``mean = exp(mu + sigma^2/2)`` and
  ``mode = exp(mu - sigma^2)``::

      sigma^2 = 2 * (lmean - lmode) / 3
      mu      = (2 * lmean + lmode) / 3

  which is exactly the density printed in the paper's Section 3.1.

The headline identity, used everywhere in the paper's argument, is::

    log10(mean / mode) = 1.5 * sigma^2 / ln(10) = 0.6514 * sigma^2

so the mean is one decade worse than the mode at sigma ~ 1.2 and two
decades worse at sigma ~ 1.7.
"""

from __future__ import annotations

import numpy as np

from ..errors import DomainError, FittingError
from ..numerics import LN10, brentq, norm_cdf, norm_pdf, norm_ppf
from .base import ContinuousJudgement

__all__ = [
    "LogNormalJudgement",
    "paper_pdf",
    "lognormal_pdf_grid",
    "mean_mode_decades",
    "sigma_for_decades",
    "MEAN_MODE_DECADE_COEFFICIENT",
]

#: Coefficient in ``log10(mean/mode) = c * sigma^2``; the paper quotes 0.65.
MEAN_MODE_DECADE_COEFFICIENT = 1.5 / LN10


class LogNormalJudgement(ContinuousJudgement):
    """Log-normal degree-of-belief distribution over a failure rate / pfd.

    Parameters
    ----------
    mu, sigma:
        Mean and standard deviation of ``ln(lambda)``; ``sigma > 0``.
    """

    def __init__(self, mu: float, sigma: float):
        if not np.isfinite(mu):
            raise DomainError(f"mu must be finite, got {mu}")
        if not (np.isfinite(sigma) and sigma > 0):
            raise DomainError(f"sigma must be positive and finite, got {sigma}")
        self._mu = float(mu)
        self._sigma = float(sigma)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mode_sigma(cls, mode: float, sigma: float) -> "LogNormalJudgement":
        """Judgement with a given peak ("most likely") value and spread."""
        if mode <= 0:
            raise DomainError(f"mode must be positive, got {mode}")
        return cls(np.log(mode) + sigma * sigma, sigma)

    @classmethod
    def from_mean_sigma(cls, mean: float, sigma: float) -> "LogNormalJudgement":
        """Judgement with a given mean value and spread."""
        if mean <= 0:
            raise DomainError(f"mean must be positive, got {mean}")
        return cls(np.log(mean) - 0.5 * sigma * sigma, sigma)

    @classmethod
    def from_median_sigma(cls, median: float, sigma: float) -> "LogNormalJudgement":
        """Judgement with a given median and spread (median = exp(mu))."""
        if median <= 0:
            raise DomainError(f"median must be positive, got {median}")
        return cls(np.log(median), sigma)

    @classmethod
    def from_mean_mode(cls, mean: float, mode: float) -> "LogNormalJudgement":
        """The paper's ``(lmean, lmode)`` parameterisation (natural values).

        Requires ``mean > mode`` (a log-normal's mean always exceeds its
        mode when sigma > 0).
        """
        if mode <= 0 or mean <= 0:
            raise DomainError("mean and mode must be positive")
        if mean <= mode:
            raise DomainError(
                f"log-normal requires mean > mode, got mean={mean}, mode={mode}"
            )
        lmean, lmode = np.log(mean), np.log(mode)
        sigma2 = 2.0 * (lmean - lmode) / 3.0
        mu = (2.0 * lmean + lmode) / 3.0
        return cls(mu, float(np.sqrt(sigma2)))

    @classmethod
    def from_mode_confidence(
        cls, mode: float, bound: float, confidence: float
    ) -> "LogNormalJudgement":
        """Judgement with given mode and one-sided confidence at a bound.

        Solves for sigma such that ``P(lambda < bound) = confidence`` while
        holding the mode fixed — the construction behind the paper's
        Figure 3, where the mode stays at 0.003 (mid-SIL 2) as confidence
        in SIL 2 varies.

        ``bound`` must exceed the mode and ``confidence`` must lie in
        (0.5, 1): with the mode below the bound, confidence is above one
        half for small spreads and decreases toward a limit as the spread
        grows, so the solve is well posed only in that range.
        """
        if mode <= 0 or bound <= 0:
            raise DomainError("mode and bound must be positive")
        if bound <= mode:
            raise DomainError(
                f"bound must exceed the mode for this construction, "
                f"got mode={mode}, bound={bound}"
            )
        if not 0.0 < confidence < 1.0:
            raise DomainError("confidence must lie strictly in (0, 1)")
        delta = np.log(bound) - np.log(mode)  # > 0

        def conf_at(sigma: float) -> float:
            # mu = ln(mode) + sigma^2, so z = (ln bound - mu)/sigma
            return float(norm_cdf((delta - sigma * sigma) / sigma))

        # conf_at -> 1 as sigma -> 0+, and decreases; find sigma in a wide
        # bracket.  conf_at is monotone decreasing in sigma for sigma^2 >
        # -delta (always true), because d/dsigma (delta/sigma - sigma) < 0.
        lo, hi = 1e-6, 50.0
        c_lo, c_hi = conf_at(lo), conf_at(hi)
        if not (c_hi < confidence < c_lo):
            raise FittingError(
                f"confidence {confidence} at bound {bound} unreachable with "
                f"mode {mode} (achievable range ({c_hi:.4g}, {c_lo:.4g}))"
            )
        sigma = brentq(lambda s: conf_at(s) - confidence, lo, hi)
        return cls.from_mode_sigma(mode, sigma)

    @classmethod
    def from_quantiles(
        cls, q1: float, x1: float, q2: float, x2: float
    ) -> "LogNormalJudgement":
        """Judgement matching two quantile statements ``P(X < x_i) = q_i``."""
        if not (0 < q1 < 1 and 0 < q2 < 1):
            raise DomainError("quantile levels must lie strictly in (0, 1)")
        if x1 <= 0 or x2 <= 0:
            raise DomainError("quantile values must be positive")
        if q1 == q2 or x1 == x2:
            raise DomainError("quantile constraints must be distinct")
        if (q1 < q2) != (x1 < x2):
            raise DomainError("quantile constraints must be co-monotone")
        z1, z2 = float(norm_ppf(q1)), float(norm_ppf(q2))
        sigma = (np.log(x2) - np.log(x1)) / (z2 - z1)
        if sigma <= 0:
            raise FittingError("constraints imply non-positive sigma")
        mu = np.log(x1) - sigma * z1
        return cls(mu, sigma)

    # ------------------------------------------------------------------ #
    # Parameters & analytic moments
    # ------------------------------------------------------------------ #

    @property
    def mu(self) -> float:
        """Mean of ``ln(lambda)``."""
        return self._mu

    @property
    def sigma(self) -> float:
        """Standard deviation of ``ln(lambda)``."""
        return self._sigma

    @property
    def support(self):
        return (0.0, float("inf"))

    def mean(self) -> float:
        return float(np.exp(self._mu + 0.5 * self._sigma**2))

    def mode(self) -> float:
        return float(np.exp(self._mu - self._sigma**2))

    def median(self) -> float:
        return float(np.exp(self._mu))

    def variance(self) -> float:
        s2 = self._sigma**2
        return float((np.exp(s2) - 1.0) * np.exp(2.0 * self._mu + s2))

    def mean_mode_decades(self) -> float:
        """``log10(mean / mode)`` — the paper's 0.65 sigma^2 identity."""
        return MEAN_MODE_DECADE_COEFFICIENT * self._sigma**2

    # ------------------------------------------------------------------ #
    # Density / CDF / quantiles / sampling
    # ------------------------------------------------------------------ #

    def pdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.zeros_like(x_arr, dtype=float)
        positive = x_arr > 0
        xp = x_arr[positive]
        z = (np.log(xp) - self._mu) / self._sigma
        out[positive] = norm_pdf(z) / (xp * self._sigma)
        if np.isscalar(x) or np.asarray(x).ndim == 0:
            return float(out.reshape(-1)[0])
        return out

    def cdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.zeros_like(x_arr, dtype=float)
        positive = x_arr > 0
        z = (np.log(x_arr[positive]) - self._mu) / self._sigma
        out[positive] = norm_cdf(z)
        if np.isscalar(x) or np.asarray(x).ndim == 0:
            return float(out.reshape(-1)[0])
        return out

    def ppf(self, q):
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise DomainError("quantile levels must lie in [0, 1]")
        out = np.empty_like(q_arr)
        interior = (q_arr > 0) & (q_arr < 1)
        out[q_arr <= 0] = 0.0
        out[q_arr >= 1] = np.inf
        if np.any(interior):
            out[interior] = np.exp(self._mu + self._sigma * norm_ppf(q_arr[interior]))
        if np.isscalar(q) or np.asarray(q).ndim == 0:
            return float(out[0])
        return out

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        if size < 1:
            raise DomainError("sample size must be positive")
        return np.exp(rng.normal(self._mu, self._sigma, size=size))

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def scaled(self, factor: float) -> "LogNormalJudgement":
        """The judgement of ``factor * lambda`` (log-normal is closed)."""
        if factor <= 0:
            raise DomainError("scale factor must be positive")
        return LogNormalJudgement(self._mu + np.log(factor), self._sigma)

    def __repr__(self) -> str:
        return (
            f"LogNormalJudgement(mu={self._mu:.6g}, sigma={self._sigma:.6g}, "
            f"mode={self.mode():.4g}, mean={self.mean():.4g})"
        )


def paper_pdf(lam, lmean: float, lmode: float):
    """The density exactly as printed in the paper's Section 3.1.

    ``pdf_lambda_l(lambda, lmean, lmode)`` with ``lmean``/``lmode`` the
    *natural* logarithms of the mean and mode failure rate.  Provided as a
    literal transcription so tests can verify our parameterisation against
    the paper's formula.
    """
    lam_arr = np.asarray(lam, dtype=float)
    if lmean <= lmode:
        raise DomainError("paper pdf requires lmean > lmode")
    sigma2 = 2.0 * (lmean - lmode) / 3.0
    mu = (2.0 * lmean + lmode) / 3.0
    out = np.zeros_like(lam_arr, dtype=float)
    positive = lam_arr > 0
    lp = lam_arr[positive]
    out[positive] = (
        1.0
        / (np.sqrt(2.0 * np.pi * sigma2) * lp)
        * np.exp(-0.5 * (np.log(lp) - mu) ** 2 / sigma2)
    )
    if np.isscalar(lam) or np.asarray(lam).ndim == 0:
        return float(out.reshape(-1)[0])
    return out


def lognormal_pdf_grid(mu, sigma, grid) -> np.ndarray:
    """Log-normal densities for *arrays* of parameters on one grid.

    The batched counterpart of :meth:`LogNormalJudgement.pdf`: ``mu`` and
    ``sigma`` are broadcast-compatible arrays of shape ``(S,)`` and the
    result has shape ``(S, len(grid))``, with row ``i`` elementwise equal
    to ``LogNormalJudgement(mu[i], sigma[i]).pdf(grid)``.  This is the
    sweep-engine hot path: one vectorised pass instead of ``S`` scalar
    density evaluations.
    """
    mu_arr = np.atleast_1d(np.asarray(mu, dtype=float))
    sigma_arr = np.atleast_1d(np.asarray(sigma, dtype=float))
    if not np.all(np.isfinite(mu_arr)):
        raise DomainError("mu values must be finite")
    if np.any(~np.isfinite(sigma_arr) | (sigma_arr <= 0)):
        raise DomainError("sigma values must be positive and finite")
    mu_arr, sigma_arr = np.broadcast_arrays(mu_arr, sigma_arr)
    grid_arr = np.asarray(grid, dtype=float)
    if grid_arr.ndim != 1:
        raise DomainError("grid must be a 1-D array")
    out = np.zeros((mu_arr.shape[0], grid_arr.shape[0]), dtype=float)
    positive = grid_arr > 0
    xp = grid_arr[positive]
    z = (np.log(xp)[np.newaxis, :] - mu_arr[:, np.newaxis]) / sigma_arr[:, np.newaxis]
    out[:, positive] = norm_pdf(z) / (xp[np.newaxis, :] * sigma_arr[:, np.newaxis])
    return out


def mean_mode_decades(sigma: float) -> float:
    """``log10(mean/mode)`` for a log-normal with the given sigma."""
    if sigma < 0:
        raise DomainError("sigma must be non-negative")
    return MEAN_MODE_DECADE_COEFFICIENT * sigma * sigma


def sigma_for_decades(decades: float) -> float:
    """Inverse of :func:`mean_mode_decades`.

    The sigma at which the mean is ``decades`` worse than the mode; the
    paper quotes sigma = 1.2 for one decade and sigma = 1.7 for two.
    """
    if decades < 0:
        raise DomainError("decades must be non-negative")
    return float(np.sqrt(decades / MEAN_MODE_DECADE_COEFFICIENT))
