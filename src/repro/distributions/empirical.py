"""Grid-based and sample-based judgements.

Bayesian updates of non-conjugate judgements (log-normal prior with a
Bernoulli-demand likelihood, Section 4.1) do not stay in any closed family,
so the posterior is represented numerically: a density sampled on a log
grid (:class:`GridJudgement`) or a cloud of Monte-Carlo samples
(:class:`EmpiricalJudgement`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import DomainError
from ..numerics import (
    cumulative_trapezoid,
    MonotoneInterpolant,
    normalise_density,
    trapezoid,
)
from .base import JudgementDistribution

__all__ = ["GridJudgement", "GridJudgementBatch", "EmpiricalJudgement"]


class GridJudgement(JudgementDistribution):
    """A judgement represented by density values on an explicit grid.

    The density is linearly interpolated between grid points and zero
    outside; the grid should therefore cover effectively all the mass of
    the judgement it represents.
    """

    def __init__(self, grid: np.ndarray, density: np.ndarray,
                 normalise: bool = True):
        grid = np.asarray(grid, dtype=float)
        density = np.asarray(density, dtype=float)
        if grid.ndim != 1 or grid.shape != density.shape:
            raise DomainError("grid and density must be 1-D arrays of equal length")
        if grid.size < 3:
            raise DomainError("grid judgement needs at least 3 points")
        if np.any(np.diff(grid) <= 0):
            raise DomainError("grid must be strictly increasing")
        if np.any(grid < 0):
            raise DomainError("failure-rate grid must be non-negative")
        if np.any(density < 0):
            raise DomainError("density values must be non-negative")
        if normalise:
            density = normalise_density(density, grid)
        self._grid = grid
        self._density = density
        self._cdf_values = np.clip(cumulative_trapezoid(density, grid), 0.0, 1.0)
        # Guard the far end against quadrature round-off.
        self._cdf_values[-1] = max(self._cdf_values[-1], self._cdf_values.max())
        self._cdf_interp = MonotoneInterpolant(self._grid, self._cdf_values)

    @classmethod
    def from_distribution(
        cls, dist: JudgementDistribution, grid: np.ndarray
    ) -> "GridJudgement":
        """Project an analytic judgement onto an explicit grid."""
        return cls(grid, np.asarray(dist.pdf(grid), dtype=float))

    @property
    def grid(self) -> np.ndarray:
        return self._grid.copy()

    @property
    def density(self) -> np.ndarray:
        return self._density.copy()

    @property
    def support(self) -> Tuple[float, float]:
        return (float(self._grid[0]), float(self._grid[-1]))

    def pdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.interp(x_arr, self._grid, self._density, left=0.0, right=0.0)
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out

    def cdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.clip(self._cdf_interp(np.clip(x_arr, self._grid[0],
                                               self._grid[-1])), 0.0, 1.0)
        out = np.where(x_arr < self._grid[0], 0.0,
                       np.where(x_arr >= self._grid[-1], 1.0, out))
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out

    def ppf(self, q):
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise DomainError("quantile levels must lie in [0, 1]")
        out = self._cdf_interp.inverse(q_arr)
        if np.isscalar(q) or q_arr.ndim == 0:
            return float(np.asarray(out).reshape(-1)[0])
        return np.asarray(out)

    def mean(self) -> float:
        return trapezoid(self._grid * self._density, self._grid)

    def variance(self) -> float:
        m = self.mean()
        second = trapezoid(self._grid**2 * self._density, self._grid)
        return max(second - m * m, 0.0)

    def mode(self) -> float:
        return float(self._grid[int(np.argmax(self._density))])

    def reweighted(self, weights: np.ndarray) -> "GridJudgement":
        """Pointwise-multiply the density by ``weights`` and renormalise.

        This is a grid Bayesian update with likelihood values ``weights``.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != self._grid.shape:
            raise DomainError("weights must match the grid shape")
        if np.any(weights < 0):
            raise DomainError("likelihood weights must be non-negative")
        return GridJudgement(self._grid, self._density * weights)

    def __repr__(self) -> str:
        return (
            f"GridJudgement(n={self._grid.size}, "
            f"support=[{self._grid[0]:.3g}, {self._grid[-1]:.3g}])"
        )


class GridJudgementBatch:
    """A whole family of grid judgements evaluated as one array.

    Holds ``S`` densities sampled on a *shared* grid as an ``(S, n)``
    array and exposes the :class:`GridJudgement` summary vocabulary —
    means, medians, modes, one-sided confidences — as vectorised
    operations over the batch.  Row ``i`` reproduces
    ``GridJudgement(grid, densities[i])`` exactly (same normalisation,
    same cumulative-trapezoid CDF, same generalised-inverse quantiles),
    so batched sweeps agree with the scalar path to round-off.

    This is the compute kernel behind :mod:`repro.engine`'s vectorised
    backends; scalar code should keep using :class:`GridJudgement`.
    """

    def __init__(self, grid: np.ndarray, densities: np.ndarray,
                 normalise: bool = True):
        grid = np.asarray(grid, dtype=float)
        densities = np.atleast_2d(np.asarray(densities, dtype=float))
        if grid.ndim != 1 or grid.size < 3:
            raise DomainError("grid must be a 1-D array of at least 3 points")
        if densities.ndim != 2 or densities.shape[1] != grid.size:
            raise DomainError(
                "densities must be an (S, n) array matching the grid length"
            )
        if np.any(np.diff(grid) <= 0):
            raise DomainError("grid must be strictly increasing")
        if np.any(grid < 0):
            raise DomainError("failure-rate grid must be non-negative")
        if np.any(densities < 0):
            raise DomainError("density values must be non-negative")
        if normalise:
            densities = normalise_density(densities, grid)
        self._grid = grid
        self._densities = densities
        cdf = np.clip(cumulative_trapezoid(densities, grid), 0.0, 1.0)
        # Same far-end guard as GridJudgement, then the monotone clip the
        # scalar path applies inside MonotoneInterpolant.
        cdf[:, -1] = np.maximum(cdf[:, -1], cdf.max(axis=1))
        self._cdf = np.maximum.accumulate(cdf, axis=1)

    @property
    def grid(self) -> np.ndarray:
        return self._grid.copy()

    @property
    def densities(self) -> np.ndarray:
        return self._densities.copy()

    @property
    def n_scenarios(self) -> int:
        return int(self._densities.shape[0])

    def __len__(self) -> int:
        return self.n_scenarios

    def __getitem__(self, index: int) -> GridJudgement:
        """Materialise one member of the batch as a scalar judgement."""
        return GridJudgement(self._grid, self._densities[index],
                             normalise=False)

    def means(self) -> np.ndarray:
        """Per-scenario means, one quadrature pass for the whole batch."""
        return trapezoid(self._grid * self._densities, self._grid)

    def variances(self) -> np.ndarray:
        seconds = trapezoid(self._grid**2 * self._densities, self._grid)
        return np.maximum(seconds - self.means() ** 2, 0.0)

    def modes(self) -> np.ndarray:
        return self._grid[np.argmax(self._densities, axis=1)]

    def confidences(self, bound) -> np.ndarray:
        """``P(X < bound)`` per scenario; ``bound`` scalar or ``(S,)``."""
        bound_arr = np.asarray(bound, dtype=float)
        if np.any(bound_arr < 0):
            raise DomainError("claim bound must be non-negative")
        bound_rows = np.broadcast_to(bound_arr, (self.n_scenarios,))
        grid = self._grid
        x = np.clip(bound_rows, grid[0], grid[-1])
        j = np.clip(np.searchsorted(grid, x, side="right") - 1, 0,
                    grid.size - 2)
        rows = np.arange(self.n_scenarios)
        y0 = self._cdf[rows, j]
        y1 = self._cdf[rows, j + 1]
        slope = (y1 - y0) / (grid[j + 1] - grid[j])
        out = np.clip(slope * (x - grid[j]) + y0, 0.0, 1.0)
        out = np.where(bound_rows < grid[0], 0.0,
                       np.where(bound_rows >= grid[-1], 1.0, out))
        return out

    def ppf(self, q: float) -> np.ndarray:
        """Per-scenario generalised-inverse quantiles at level ``q``."""
        q = float(q)
        if not 0.0 <= q <= 1.0:
            raise DomainError("quantile levels must lie in [0, 1]")
        y = self._cdf
        grid = self._grid
        # First index with cdf >= q (searchsorted side='left', per row).
        j = np.argmax(y >= q, axis=1)
        j = np.clip(j, 1, grid.size - 1)
        rows = np.arange(self.n_scenarios)
        y0 = y[rows, j - 1]
        y1 = y[rows, j]
        x0 = grid[j - 1]
        x1 = grid[j]
        gap = y1 - y0
        with np.errstate(divide="ignore", invalid="ignore"):
            interior = np.where(gap > 0, x0 + (q - y0) * (x1 - x0) / gap, x0)
        out = np.where(q <= y[:, 0], grid[0],
                       np.where(q >= y[:, -1], grid[-1], interior))
        return out

    def medians(self) -> np.ndarray:
        return self.ppf(0.5)

    def reweighted(self, weights: np.ndarray) -> "GridJudgementBatch":
        """Batched grid Bayesian update: multiply densities by likelihood
        rows (``(S, n)`` or broadcastable) and renormalise."""
        weights = np.asarray(weights, dtype=float)
        if np.any(weights < 0):
            raise DomainError("likelihood weights must be non-negative")
        return GridJudgementBatch(self._grid, self._densities * weights)

    def summaries(self, bound=None) -> dict:
        """The engine's standard summary columns as arrays."""
        out = {
            "mean": self.means(),
            "median": self.medians(),
            "mode": self.modes(),
        }
        if bound is not None:
            out["confidence"] = self.confidences(bound)
        return out

    def __repr__(self) -> str:
        return (
            f"GridJudgementBatch(S={self.n_scenarios}, n={self._grid.size}, "
            f"support=[{self._grid[0]:.3g}, {self._grid[-1]:.3g}])"
        )


class EmpiricalJudgement(JudgementDistribution):
    """A judgement represented by Monte-Carlo samples.

    CDF and quantiles are the empirical ones; the density is a histogram
    estimate (adequate for plotting, not for tail integration — use
    :class:`GridJudgement` when quadrature accuracy matters).
    """

    def __init__(self, samples: np.ndarray):
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1 or samples.size < 2:
            raise DomainError("need a 1-D array of at least 2 samples")
        if np.any(samples < 0):
            raise DomainError("failure-rate samples must be non-negative")
        self._sorted = np.sort(samples)

    @property
    def samples(self) -> np.ndarray:
        return self._sorted.copy()

    @property
    def n(self) -> int:
        return int(self._sorted.size)

    @property
    def support(self) -> Tuple[float, float]:
        return (float(self._sorted[0]), float(self._sorted[-1]))

    def pdf(self, x):
        edges = np.histogram_bin_edges(self._sorted, bins="auto")
        counts, _ = np.histogram(self._sorted, bins=edges, density=True)
        x_arr = np.asarray(x, dtype=float)
        idx = np.clip(np.searchsorted(edges, x_arr, side="right") - 1,
                      0, len(counts) - 1)
        out = np.where((x_arr >= edges[0]) & (x_arr <= edges[-1]),
                       counts[idx], 0.0)
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out

    def cdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.searchsorted(self._sorted, x_arr, side="right") / self.n
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out.astype(float)

    def ppf(self, q):
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise DomainError("quantile levels must lie in [0, 1]")
        out = np.quantile(self._sorted, q_arr)
        if np.isscalar(q) or q_arr.ndim == 0:
            return float(out)
        return out

    def mean(self) -> float:
        return float(self._sorted.mean())

    def variance(self) -> float:
        return float(self._sorted.var())

    def standard_error_of_mean(self) -> float:
        """Monte-Carlo standard error of :meth:`mean`."""
        return float(self._sorted.std(ddof=1) / np.sqrt(self.n))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        if size < 1:
            raise DomainError("sample size must be positive")
        return rng.choice(self._sorted, size=size, replace=True)

    def __repr__(self) -> str:
        return f"EmpiricalJudgement(n={self.n})"
