"""Gamma judgement distribution (the paper's sensitivity check).

Section 3 of the paper notes that the qualitative results "only require a
non-symmetric distribution" and that some were repeated for a gamma
distribution "to illustrate the (low) sensitivity to the log-normal
assumptions".  This module provides that alternative: a gamma distribution
over the failure rate, with constructors matched to the same elicitation
vocabulary (mode + spread, mean + mode, mode + one-sided confidence).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _sp_stats

from ..errors import DomainError, FittingError
from ..numerics import brentq, gammainc_lower, gammaincinv_lower
from .base import ContinuousJudgement

__all__ = ["GammaJudgement", "gamma_pdf_grid"]


def gamma_pdf_grid(shape, scale, grid) -> np.ndarray:
    """Gamma densities for *arrays* of parameters on one grid.

    Batched counterpart of :meth:`GammaJudgement.pdf`: row ``i`` of the
    ``(S, len(grid))`` result equals
    ``GammaJudgement(shape[i], scale[i]).pdf(grid)``.
    """
    shape_arr = np.atleast_1d(np.asarray(shape, dtype=float))
    scale_arr = np.atleast_1d(np.asarray(scale, dtype=float))
    if np.any(~np.isfinite(shape_arr) | (shape_arr <= 0)):
        raise DomainError("shape values must be positive and finite")
    if np.any(~np.isfinite(scale_arr) | (scale_arr <= 0)):
        raise DomainError("scale values must be positive and finite")
    shape_arr, scale_arr = np.broadcast_arrays(shape_arr, scale_arr)
    grid_arr = np.asarray(grid, dtype=float)
    if grid_arr.ndim != 1:
        raise DomainError("grid must be a 1-D array")
    return _sp_stats.gamma.pdf(
        grid_arr[np.newaxis, :],
        shape_arr[:, np.newaxis],
        scale=scale_arr[:, np.newaxis],
    )


class GammaJudgement(ContinuousJudgement):
    """Gamma degree-of-belief distribution over a failure rate / pfd.

    Parameters
    ----------
    shape:
        Shape parameter ``k > 0``.  A mode exists only for ``k > 1``.
    scale:
        Scale parameter ``theta > 0``; mean = ``k * theta``.
    """

    def __init__(self, shape: float, scale: float):
        if not (np.isfinite(shape) and shape > 0):
            raise DomainError(f"shape must be positive, got {shape}")
        if not (np.isfinite(scale) and scale > 0):
            raise DomainError(f"scale must be positive, got {scale}")
        self._shape = float(shape)
        self._scale = float(scale)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mean_mode(cls, mean: float, mode: float) -> "GammaJudgement":
        """Gamma with the given mean and mode.

        ``mean = k * theta`` and ``mode = (k - 1) * theta`` give
        ``theta = mean - mode`` and ``k = mean / theta``; requires
        ``mean > mode > 0``.
        """
        if mode <= 0 or mean <= 0:
            raise DomainError("mean and mode must be positive")
        if mean <= mode:
            raise DomainError(
                f"gamma with a mode requires mean > mode, got {mean} <= {mode}"
            )
        scale = mean - mode
        shape = mean / scale
        return cls(shape, scale)

    @classmethod
    def from_mode_shape(cls, mode: float, shape: float) -> "GammaJudgement":
        """Gamma with the given mode and shape ``k > 1``."""
        if mode <= 0:
            raise DomainError("mode must be positive")
        if shape <= 1:
            raise DomainError("a gamma has a positive mode only for shape > 1")
        return cls(shape, mode / (shape - 1.0))

    @classmethod
    def from_mode_confidence(
        cls, mode: float, bound: float, confidence: float
    ) -> "GammaJudgement":
        """Gamma with given mode and one-sided confidence at a bound.

        The gamma analogue of the log-normal Figure 3 construction: hold
        the mode fixed and solve for the shape achieving
        ``P(lambda < bound) = confidence``.  Smaller shapes are broader, so
        confidence increases with shape.
        """
        if mode <= 0 or bound <= 0:
            raise DomainError("mode and bound must be positive")
        if bound <= mode:
            raise DomainError("bound must exceed the mode for this construction")
        if not 0.0 < confidence < 1.0:
            raise DomainError("confidence must lie strictly in (0, 1)")

        def conf_at(shape: float) -> float:
            scale = mode / (shape - 1.0)
            return float(gammainc_lower(shape, bound / scale))

        lo, hi = 1.0 + 1e-9, 1e7
        c_lo, c_hi = conf_at(lo), conf_at(hi)
        if not (min(c_lo, c_hi) < confidence < max(c_lo, c_hi)):
            raise FittingError(
                f"confidence {confidence} at bound {bound} unreachable with "
                f"mode {mode} (range [{min(c_lo, c_hi):.4g}, {max(c_lo, c_hi):.4g}])"
            )
        shape = brentq(lambda k: conf_at(k) - confidence, lo, hi)
        return cls.from_mode_shape(mode, shape)

    # ------------------------------------------------------------------ #
    # Parameters & analytic moments
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> float:
        return self._shape

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def support(self):
        return (0.0, float("inf"))

    def mean(self) -> float:
        return self._shape * self._scale

    def variance(self) -> float:
        return self._shape * self._scale**2

    def mode(self) -> float:
        if self._shape <= 1:
            return 0.0
        return (self._shape - 1.0) * self._scale

    def mean_mode_decades(self) -> float:
        """``log10(mean/mode)``; infinite when no positive mode exists."""
        m = self.mode()
        if m <= 0:
            return float("inf")
        return float(np.log10(self.mean() / m))

    # ------------------------------------------------------------------ #
    # Density / CDF / quantiles / sampling
    # ------------------------------------------------------------------ #

    def pdf(self, x):
        out = _sp_stats.gamma.pdf(np.asarray(x, dtype=float), self._shape,
                                  scale=self._scale)
        if np.isscalar(x) or np.asarray(x).ndim == 0:
            return float(out)
        return out

    def cdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.where(x_arr > 0, gammainc_lower(self._shape,
                                                 np.maximum(x_arr, 0) / self._scale), 0.0)
        if np.isscalar(x) or np.asarray(x).ndim == 0:
            return float(out)
        return out

    def ppf(self, q):
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise DomainError("quantile levels must lie in [0, 1]")
        out = np.empty_like(q_arr)
        out[q_arr <= 0] = 0.0
        out[q_arr >= 1] = np.inf
        interior = (q_arr > 0) & (q_arr < 1)
        if np.any(interior):
            out[interior] = self._scale * gammaincinv_lower(self._shape,
                                                            q_arr[interior])
        if np.isscalar(q) or np.asarray(q).ndim == 0:
            return float(out[0])
        return out

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        if size < 1:
            raise DomainError("sample size must be positive")
        return rng.gamma(self._shape, self._scale, size=size)

    def __repr__(self) -> str:
        return (
            f"GammaJudgement(shape={self._shape:.6g}, scale={self._scale:.6g}, "
            f"mode={self.mode():.4g}, mean={self.mean():.4g})"
        )
