"""Judgement distributions over failure rates and pfds.

This package is the probabilistic substrate of the library: the paper's
log-normal model and the paper's own (mean, mode) parameterisation, the
gamma sensitivity alternative, beta (conjugate for demand testing),
worst-case discrete layouts (Figure 6b), perfection mixtures, tail
truncation, and grid/empirical posteriors, plus fitting from elicited
quantile fragments.
"""

from .base import ContinuousJudgement, JudgementDistribution
from .beta import BetaJudgement
from .empirical import EmpiricalJudgement, GridJudgement, GridJudgementBatch
from .fitting import (
    QuantileConstraint,
    check_constraints,
    constraint_residuals,
    fit_best,
    fit_gamma,
    fit_lognormal,
)
from .gamma import GammaJudgement, gamma_pdf_grid
from .lognormal import (
    MEAN_MODE_DECADE_COEFFICIENT,
    LogNormalJudgement,
    lognormal_pdf_grid,
    mean_mode_decades,
    paper_pdf,
    sigma_for_decades,
)
from .mixture import MixtureJudgement, with_perfection
from .pointmass import (
    DiscreteJudgement,
    PointMass,
    TwoPointWorstCase,
    WorstCaseWithPerfection,
)
from .truncated import TruncatedJudgement

__all__ = [
    "ContinuousJudgement",
    "JudgementDistribution",
    "BetaJudgement",
    "EmpiricalJudgement",
    "GridJudgement",
    "GridJudgementBatch",
    "QuantileConstraint",
    "check_constraints",
    "constraint_residuals",
    "fit_best",
    "fit_gamma",
    "fit_lognormal",
    "GammaJudgement",
    "gamma_pdf_grid",
    "MEAN_MODE_DECADE_COEFFICIENT",
    "LogNormalJudgement",
    "lognormal_pdf_grid",
    "mean_mode_decades",
    "paper_pdf",
    "sigma_for_decades",
    "MixtureJudgement",
    "with_perfection",
    "DiscreteJudgement",
    "PointMass",
    "TwoPointWorstCase",
    "WorstCaseWithPerfection",
    "TruncatedJudgement",
]
