"""Mixture judgements, including probability-of-perfection mixtures.

The paper's footnote 3 distinguishes two very different beliefs: that a
system is *perfect* (pfd exactly 0, arguable non-probabilistically) versus
that its pfd is merely very small.  A belief admitting both is a mixture:
probability ``p0`` of perfection (a point mass at 0) plus ``1 - p0`` times
a continuous judgement over the imperfect case.  Mixtures also arise when
pooling expert opinions (:mod:`repro.elicitation.pooling`).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import DomainError
from .base import JudgementDistribution

__all__ = ["MixtureJudgement", "with_perfection"]


class MixtureJudgement(JudgementDistribution):
    """Convex combination of component judgements.

    Components may be continuous, discrete, or themselves mixtures; the
    mixture CDF/mean/variance are the weighted combinations.
    """

    def __init__(
        self,
        components: Sequence[JudgementDistribution],
        weights: Sequence[float],
    ):
        if len(components) == 0:
            raise DomainError("mixture needs at least one component")
        if len(components) != len(weights):
            raise DomainError("components and weights must have equal length")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0):
            raise DomainError("mixture weights must be non-negative")
        total = w.sum()
        if total <= 0 or not np.isclose(total, 1.0, atol=1e-9):
            raise DomainError(f"mixture weights must sum to 1, got {total}")
        self._components = list(components)
        self._weights = w / total

    @property
    def components(self) -> Tuple[JudgementDistribution, ...]:
        return tuple(self._components)

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    @property
    def support(self) -> Tuple[float, float]:
        lows, highs = zip(*(c.support for c in self._components))
        return (min(lows), max(highs))

    def pdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.zeros(np.shape(x_arr), dtype=float)
        for comp, w in zip(self._components, self._weights):
            out = out + w * np.asarray(comp.pdf(x_arr), dtype=float)
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out

    def cdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.zeros(np.shape(x_arr), dtype=float)
        for comp, w in zip(self._components, self._weights):
            out = out + w * np.asarray(comp.cdf(x_arr), dtype=float)
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out

    def mean(self) -> float:
        return float(sum(w * c.mean() for c, w in
                         zip(self._components, self._weights)))

    def variance(self) -> float:
        m = self.mean()
        second = sum(
            w * (c.variance() + c.mean() ** 2)
            for c, w in zip(self._components, self._weights)
        )
        return float(max(second - m * m, 0.0))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        if size < 1:
            raise DomainError("sample size must be positive")
        choices = rng.choice(len(self._components), size=size, p=self._weights)
        out = np.empty(size, dtype=float)
        for idx in np.unique(choices):
            mask = choices == idx
            out[mask] = self._components[idx].sample(rng, int(mask.sum()))
        return out

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:.3g}*{type(c).__name__}" for c, w in
            zip(self._components, self._weights)
        )
        return f"MixtureJudgement({parts})"


def with_perfection(
    perfection: float, imperfect: JudgementDistribution
) -> JudgementDistribution:
    """Belief with probability ``perfection`` that the pfd is exactly 0.

    Returns the mixture ``p0 * delta(0) + (1 - p0) * imperfect`` (or the
    unmodified judgement when ``p0 = 0``).
    """
    from .pointmass import PointMass  # local import avoids a cycle

    if not 0 <= perfection < 1:
        raise DomainError(f"perfection mass must lie in [0, 1), got {perfection}")
    if perfection == 0:
        return imperfect
    return MixtureJudgement(
        [PointMass(0.0), imperfect], [perfection, 1.0 - perfection]
    )
