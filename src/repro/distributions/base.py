"""Abstract base class for judgement distributions.

A *judgement distribution* is the Bayesian (degree-of-belief) distribution
an assessor holds over an uncertain dependability parameter — in the paper,
the probability of failure on demand (pfd) or dangerous failure rate of a
safety function.  The paper's central observations are all statements about
such distributions:

* confidence in a claim ``pfd < y`` is the CDF at ``y``;
* the *mean* of the distribution — not the mode — is what matters for risk,
  because ``P(failure on a random demand) = E[pfd]`` (the paper's eq. (4));
* asymmetric distributions put the mean well above the mode.

Subclasses provide ``pdf``/``cdf`` (and analytic moments where available);
this base class supplies generic quadrature-based fallbacks, quantiles via
monotone inversion, sampling via inverse transform, and the confidence /
expected-failure-probability vocabulary used by the rest of the library.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..errors import DomainError
from ..numerics import (
    cumulative_trapezoid,
    invert_monotone,
    log_grid,
    trapezoid,
)

__all__ = ["JudgementDistribution", "ContinuousJudgement"]


class JudgementDistribution(abc.ABC):
    """A degree-of-belief distribution over a failure rate or pfd.

    The support is a subinterval of ``[0, inf)``; for pfd judgements it is a
    subinterval of ``[0, 1]``.  Point masses (e.g. a probability of
    *perfection* at 0) are permitted: ``cdf`` is then right-continuous and
    ``pdf`` describes only the continuous part.
    """

    # ------------------------------------------------------------------ #
    # Abstract interface
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def support(self) -> Tuple[float, float]:
        """Closed support ``(low, high)`` of the distribution."""

    @abc.abstractmethod
    def pdf(self, x):
        """Density of the continuous part at ``x`` (vectorised)."""

    @abc.abstractmethod
    def cdf(self, x):
        """Right-continuous CDF ``P(X <= x)`` (vectorised)."""

    # ------------------------------------------------------------------ #
    # Generic derived quantities
    # ------------------------------------------------------------------ #

    def sf(self, x):
        """Survival function ``P(X > x)``."""
        return 1.0 - np.asarray(self.cdf(x), dtype=float)

    def confidence(self, bound: float) -> float:
        """Confidence that the true parameter is below ``bound``.

        This is the paper's one-sided confidence ``P(lambda < bound)`` —
        e.g. confidence in SIL n membership with ``bound = 10**-n``.
        """
        if bound < 0:
            raise DomainError(f"claim bound must be non-negative, got {bound}")
        return float(self.cdf(bound))

    def doubt(self, bound: float) -> float:
        """Complement of :meth:`confidence`: ``P(X > bound)``."""
        return 1.0 - self.confidence(bound)

    def ppf(self, q):
        """Quantile function (generalised inverse of the CDF)."""
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise DomainError("quantile levels must lie in [0, 1]")
        low, high = self.support
        lo = max(low, 1e-300)
        out = np.empty_like(q_arr)
        for i, level in enumerate(q_arr):
            if level <= self.cdf(lo):
                out[i] = low
            elif level >= 1.0:
                out[i] = high
            else:
                out[i] = invert_monotone(
                    lambda x: float(self.cdf(x)), level, lo, high, increasing=True
                )
        if np.isscalar(q) or np.asarray(q).ndim == 0:
            return float(out[0])
        return out

    def median(self) -> float:
        """The 50 % quantile."""
        return float(self.ppf(0.5))

    # ------------------------------------------------------------------ #
    # Moments (quadrature fallbacks; subclasses override analytically)
    # ------------------------------------------------------------------ #

    def _moment_grid(self, points_per_decade: int = 400) -> np.ndarray:
        low, high = self.support
        lo = max(low, 1e-30)
        if not np.isfinite(high):
            # Cap an unbounded support at an extreme quantile; the mass
            # beyond it is negligible for quadrature moments.
            high = float(self.ppf(1.0 - 1e-12))
        if low <= 0:
            # Pull the lower end up to an extreme quantile too, so grid
            # resolution is spent where the density lives.
            left_tail = float(self.ppf(1e-14))
            if np.isfinite(left_tail) and left_tail > 0:
                lo = max(lo, left_tail * 1e-2)
        if high <= lo:
            raise DomainError("degenerate support for quadrature moments")
        return log_grid(lo, high, points_per_decade)

    def mean(self) -> float:
        """Expected value — the paper's ``P(system fails on random demand)``
        when the variable is a pfd (eq. (4))."""
        grid = self._moment_grid()
        return trapezoid(grid * self.pdf(grid), grid) + self._point_mass_mean()

    def variance(self) -> float:
        """Variance of the judgement."""
        m = self.mean()
        grid = self._moment_grid()
        second = trapezoid(grid**2 * self.pdf(grid), grid) + self._point_mass_second()
        return max(second - m * m, 0.0)

    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance()))

    def _point_mass_mean(self) -> float:
        """Contribution of point masses to the mean (0 for purely continuous)."""
        return 0.0

    def _point_mass_second(self) -> float:
        """Contribution of point masses to the second moment."""
        return 0.0

    def expected_failure_probability(self) -> float:
        """Alias for :meth:`mean` when the variable is a pfd.

        Named after the paper's interpretation: the probability the system
        fails on a randomly selected demand, marginalising assessor
        uncertainty.
        """
        return self.mean()

    def mode(self) -> float:
        """Most-likely value (peak of the continuous density).

        Generic numeric fallback; analytic subclasses override.
        """
        grid = self._moment_grid()
        dens = np.asarray(self.pdf(grid), dtype=float)
        return float(grid[int(np.argmax(dens))])

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw samples by inverse transform (subclasses may specialise)."""
        if size < 1:
            raise DomainError("sample size must be positive")
        u = rng.uniform(size=size)
        return np.asarray(self.ppf(u), dtype=float).reshape(size)

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #

    def cdf_on_grid(self, grid: np.ndarray) -> np.ndarray:
        """CDF sampled on an explicit grid."""
        return np.asarray(self.cdf(grid), dtype=float)

    def credible_interval(self, level: float = 0.9) -> Tuple[float, float]:
        """Central credible interval at the given level."""
        if not 0 < level < 1:
            raise DomainError("credible level must lie strictly in (0, 1)")
        alpha = (1.0 - level) / 2.0
        return float(self.ppf(alpha)), float(self.ppf(1.0 - alpha))


class ContinuousJudgement(JudgementDistribution):
    """Convenience base for purely continuous judgements.

    Adds a grid-CDF consistency check used by tests and provides a default
    vectorised CDF built from the pdf when subclasses lack an analytic one.
    """

    def cdf_from_pdf(self, x, points_per_decade: int = 400):
        """Numerically integrate the pdf to evaluate the CDF at ``x``."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        low, _high = self.support
        lo = max(low, 1e-30)
        out = np.empty_like(x_arr)
        for i, xi in enumerate(x_arr):
            if xi <= lo:
                out[i] = 0.0
                continue
            grid = log_grid(lo, xi, points_per_decade)
            out[i] = trapezoid(self.pdf(grid), grid)
        out = np.clip(out, 0.0, 1.0)
        if np.isscalar(x) or np.asarray(x).ndim == 0:
            return float(out[0])
        return out

    def normalisation_defect(self, points_per_decade: int = 400) -> float:
        """``|integral pdf - 1|`` on the moment grid — a numeric health check."""
        grid = self._moment_grid(points_per_decade)
        return abs(trapezoid(self.pdf(grid), grid) - 1.0)

    def cdf_grid_pair(
        self, points_per_decade: int = 400
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(grid, cdf-on-grid)`` built by cumulative quadrature."""
        grid = self._moment_grid(points_per_decade)
        cdf = np.clip(cumulative_trapezoid(self.pdf(grid), grid), 0.0, 1.0)
        return grid, cdf
