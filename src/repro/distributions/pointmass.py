"""Degenerate and worst-case discrete judgements (the paper's Figure 6).

Section 3.4 of the paper asks: if an expert will only state a single point
belief ``P(pfd < y) = 1 - x``, what distribution consistent with that
belief is *most conservative* for the probability of failure on a random
demand ``E[pfd]``?  The answer (the paper's Figure 6b) concentrates all the
mass of ``(0, y)`` at ``y`` and all the mass of ``(y, 1]`` at 1, giving::

    E[pfd] <= (1 - x) * y + x = x + y - x*y

:class:`TwoPointWorstCase` is exactly that distribution; with an additional
probability of perfection ``p0`` at pfd = 0 it generalises to
:class:`WorstCaseWithPerfection` and the bound ``x + y - (x + p0) * y``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import DomainError
from .base import JudgementDistribution

__all__ = ["PointMass", "DiscreteJudgement", "TwoPointWorstCase",
           "WorstCaseWithPerfection"]


class DiscreteJudgement(JudgementDistribution):
    """A purely discrete judgement: probability masses at a few atoms."""

    def __init__(self, masses: Dict[float, float]):
        if not masses:
            raise DomainError("need at least one atom")
        atoms = np.array(sorted(masses), dtype=float)
        probs = np.array([masses[a] for a in atoms], dtype=float)
        if np.any(atoms < 0):
            raise DomainError("atoms must be non-negative failure rates")
        if np.any(probs < 0):
            raise DomainError("masses must be non-negative")
        total = probs.sum()
        if not np.isclose(total, 1.0, atol=1e-9):
            raise DomainError(f"masses must sum to 1, got {total}")
        self._atoms = atoms
        self._probs = probs / total

    @property
    def atoms(self) -> np.ndarray:
        return self._atoms.copy()

    @property
    def masses(self) -> np.ndarray:
        return self._probs.copy()

    @property
    def support(self) -> Tuple[float, float]:
        return (float(self._atoms[0]), float(self._atoms[-1]))

    def pdf(self, x):
        """Continuous part is empty; density is zero everywhere."""
        x_arr = np.asarray(x, dtype=float)
        out = np.zeros_like(x_arr)
        if np.isscalar(x) or x_arr.ndim == 0:
            return 0.0
        return out

    def cdf(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.zeros(x_arr.shape, dtype=float)
        for atom, prob in zip(self._atoms, self._probs):
            out = out + np.where(x_arr >= atom, prob, 0.0)
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(out)
        return out

    def mean(self) -> float:
        return float(np.dot(self._atoms, self._probs))

    def variance(self) -> float:
        m = self.mean()
        return float(np.dot((self._atoms - m) ** 2, self._probs))

    def mode(self) -> float:
        return float(self._atoms[int(np.argmax(self._probs))])

    def ppf(self, q):
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise DomainError("quantile levels must lie in [0, 1]")
        cum = np.cumsum(self._probs)
        idx = np.searchsorted(cum, np.clip(q_arr, 0.0, 1.0), side="left")
        idx = np.minimum(idx, len(self._atoms) - 1)
        out = self._atoms[idx]
        if np.isscalar(q) or np.asarray(q).ndim == 0:
            return float(out[0])
        return out

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        if size < 1:
            raise DomainError("sample size must be positive")
        return rng.choice(self._atoms, size=size, p=self._probs)


class PointMass(DiscreteJudgement):
    """All belief concentrated at a single value (e.g. claimed perfection)."""

    def __init__(self, at: float):
        super().__init__({float(at): 1.0})
        self._at = float(at)

    @property
    def at(self) -> float:
        return self._at

    def __repr__(self) -> str:
        return f"PointMass(at={self._at:.4g})"


class TwoPointWorstCase(DiscreteJudgement):
    """The paper's Figure 6b: mass ``1 - x`` at ``y`` and ``x`` at 1.

    Among all pfd distributions satisfying ``P(pfd < y) = 1 - x``, this one
    maximises the probability of failure on a randomly selected demand,
    ``E[pfd] = x + y - x*y`` (the paper's inequality (5)).
    """

    def __init__(self, claim_bound: float, doubt: float):
        if not 0 < claim_bound <= 1:
            raise DomainError(f"claim bound must lie in (0, 1], got {claim_bound}")
        if not 0 <= doubt <= 1:
            raise DomainError(f"doubt must lie in [0, 1], got {doubt}")
        self._claim_bound = float(claim_bound)
        self._doubt = float(doubt)
        if claim_bound == 1.0 or doubt in (0.0, 1.0):
            # Degenerate layouts collapse atoms.
            masses = {}
            masses[claim_bound] = masses.get(claim_bound, 0.0) + (1.0 - doubt)
            masses[1.0] = masses.get(1.0, 0.0) + doubt
            masses = {a: m for a, m in masses.items() if m > 0}
            super().__init__(masses)
        else:
            super().__init__({claim_bound: 1.0 - doubt, 1.0: doubt})

    @property
    def claim_bound(self) -> float:
        """The bound ``y`` in ``P(pfd < y) = 1 - x``."""
        return self._claim_bound

    @property
    def doubt_mass(self) -> float:
        """The doubt ``x``."""
        return self._doubt

    def mean(self) -> float:
        """``x + y - x*y`` exactly (paper inequality (5))."""
        x, y = self._doubt, self._claim_bound
        return x + y - x * y

    def __repr__(self) -> str:
        return (
            f"TwoPointWorstCase(claim_bound={self._claim_bound:.4g}, "
            f"doubt={self._doubt:.4g})"
        )


class WorstCaseWithPerfection(DiscreteJudgement):
    """Worst case given belief in possible perfection.

    Mass ``p0`` at pfd = 0 (the system may be fault-free), ``1 - x - p0``
    at ``y`` and ``x`` at 1, giving ``E[pfd] = x + y - (x + p0) * y`` — the
    paper's modified bound.
    """

    def __init__(self, perfection: float, claim_bound: float, doubt: float):
        if not 0 <= perfection <= 1:
            raise DomainError(f"perfection mass must lie in [0, 1], got {perfection}")
        if not 0 < claim_bound <= 1:
            raise DomainError(f"claim bound must lie in (0, 1], got {claim_bound}")
        if not 0 <= doubt <= 1:
            raise DomainError(f"doubt must lie in [0, 1], got {doubt}")
        middle = 1.0 - doubt - perfection
        if middle < -1e-12:
            raise DomainError(
                f"perfection {perfection} + doubt {doubt} exceed total belief"
            )
        middle = max(middle, 0.0)
        masses: Dict[float, float] = {}
        for atom, mass in ((0.0, perfection), (claim_bound, middle), (1.0, doubt)):
            if mass > 0:
                masses[atom] = masses.get(atom, 0.0) + mass
        self._perfection = float(perfection)
        self._claim_bound = float(claim_bound)
        self._doubt = float(doubt)
        super().__init__(masses)

    @property
    def perfection(self) -> float:
        return self._perfection

    @property
    def claim_bound(self) -> float:
        return self._claim_bound

    @property
    def doubt_mass(self) -> float:
        return self._doubt

    def mean(self) -> float:
        """``x + y - (x + p0) * y`` exactly (paper, end of Section 3.4)."""
        x, y, p0 = self._doubt, self._claim_bound, self._perfection
        return x + y - (x + p0) * y

    def __repr__(self) -> str:
        return (
            f"WorstCaseWithPerfection(perfection={self._perfection:.4g}, "
            f"claim_bound={self._claim_bound:.4g}, doubt={self._doubt:.4g})"
        )
