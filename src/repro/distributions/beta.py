"""Beta judgement distribution over a pfd.

A pfd lives on ``[0, 1]``, and the beta family is the natural conjugate
prior for Bernoulli-demand evidence (the statistical testing discussed in
the paper's Section 4.1).  :mod:`repro.update.conjugate` exploits the
conjugacy; here we provide the distribution itself in the library's
judgement vocabulary.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _sp_stats

from ..errors import DomainError, FittingError
from ..numerics import brentq
from .base import ContinuousJudgement

__all__ = ["BetaJudgement"]


class BetaJudgement(ContinuousJudgement):
    """Beta(a, b) degree-of-belief distribution over a pfd in [0, 1]."""

    def __init__(self, a: float, b: float):
        if not (np.isfinite(a) and a > 0):
            raise DomainError(f"a must be positive, got {a}")
        if not (np.isfinite(b) and b > 0):
            raise DomainError(f"b must be positive, got {b}")
        self._a = float(a)
        self._b = float(b)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mean_equivalent_observations(
        cls, mean: float, n_equiv: float
    ) -> "BetaJudgement":
        """Beta with the given mean and pseudo-observation count ``a + b``."""
        if not 0 < mean < 1:
            raise DomainError("mean must lie strictly in (0, 1)")
        if n_equiv <= 0:
            raise DomainError("equivalent observation count must be positive")
        return cls(mean * n_equiv, (1.0 - mean) * n_equiv)

    @classmethod
    def from_mode_confidence(
        cls, mode: float, bound: float, confidence: float
    ) -> "BetaJudgement":
        """Beta with given mode and one-sided confidence at a bound.

        Holds the mode fixed via ``mode = (a-1)/(a+b-2)`` (requires a, b >
        1) and solves for the concentration achieving
        ``P(pfd < bound) = confidence``.
        """
        if not 0 < mode < 1:
            raise DomainError("mode must lie strictly in (0, 1)")
        if not mode < bound < 1:
            raise DomainError("bound must lie in (mode, 1)")
        if not 0.0 < confidence < 1.0:
            raise DomainError("confidence must lie strictly in (0, 1)")

        def conf_at(concentration: float) -> float:
            # concentration = a + b - 2 > 0 keeps the mode well defined.
            a = 1.0 + mode * concentration
            b = 1.0 + (1.0 - mode) * concentration
            return float(_sp_stats.beta.cdf(bound, a, b))

        lo, hi = 1e-6, 1e9
        c_lo, c_hi = conf_at(lo), conf_at(hi)
        if not (min(c_lo, c_hi) < confidence < max(c_lo, c_hi)):
            raise FittingError(
                f"confidence {confidence} unreachable for mode {mode}, "
                f"bound {bound}"
            )
        conc = brentq(lambda c: conf_at(c) - confidence, lo, hi)
        return cls(1.0 + mode * conc, 1.0 + (1.0 - mode) * conc)

    # ------------------------------------------------------------------ #
    # Parameters & analytic moments
    # ------------------------------------------------------------------ #

    @property
    def a(self) -> float:
        return self._a

    @property
    def b(self) -> float:
        return self._b

    @property
    def support(self):
        return (0.0, 1.0)

    def mean(self) -> float:
        return self._a / (self._a + self._b)

    def variance(self) -> float:
        s = self._a + self._b
        return self._a * self._b / (s * s * (s + 1.0))

    def mode(self) -> float:
        if self._a > 1 and self._b > 1:
            return (self._a - 1.0) / (self._a + self._b - 2.0)
        if self._a <= 1 and self._b > 1:
            return 0.0
        if self._a > 1 and self._b <= 1:
            return 1.0
        # Bimodal at both endpoints; report the heavier one.
        return 0.0 if self._a < self._b else 1.0

    # ------------------------------------------------------------------ #
    # Density / CDF / quantiles / sampling
    # ------------------------------------------------------------------ #

    def pdf(self, x):
        out = _sp_stats.beta.pdf(np.asarray(x, dtype=float), self._a, self._b)
        if np.isscalar(x) or np.asarray(x).ndim == 0:
            return float(out)
        return out

    def cdf(self, x):
        out = _sp_stats.beta.cdf(np.asarray(x, dtype=float), self._a, self._b)
        if np.isscalar(x) or np.asarray(x).ndim == 0:
            return float(out)
        return out

    def ppf(self, q):
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise DomainError("quantile levels must lie in [0, 1]")
        out = _sp_stats.beta.ppf(q_arr, self._a, self._b)
        if np.isscalar(q) or q_arr.ndim == 0:
            return float(out)
        return out

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        if size < 1:
            raise DomainError("sample size must be positive")
        return rng.beta(self._a, self._b, size=size)

    def updated(self, failures: int, successes: int) -> "BetaJudgement":
        """Posterior after observing Bernoulli demand outcomes (conjugacy)."""
        if failures < 0 or successes < 0:
            raise DomainError("observation counts must be non-negative")
        return BetaJudgement(self._a + failures, self._b + successes)

    def __repr__(self) -> str:
        return f"BetaJudgement(a={self._a:.6g}, b={self._b:.6g})"
