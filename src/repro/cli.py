"""Command-line interface: ``repro-case``.

Twelve subcommands cover the library's day-one uses:

* ``assess`` — classify a (mode, sigma) log-normal judgement into SILs
  and show the confidence/mean disagreement;
* ``conservative`` — the Section 3.4 design problem: what belief
  supports a claim;
* ``tests`` — how many failure-free demands reach a confidence target;
* ``growth`` — the Bishop-Bloomfield conservative growth bound;
* ``sweep`` — run batched scenario sweeps (:mod:`repro.engine`) from a
  YAML/JSON spec file (single- or multi-sweep) and tabulate or export
  the results; ``--stream --out rows.jsonl`` switches to the streaming
  executor (constant memory, JSONL/CSV sinks, ``--progress`` chunk
  counters on stderr, ``--cache`` for a disk-persistent result cache,
  ``--dtype float32`` for half-memory parameter planes, ``--tuned
  [FILE]`` to run under a measured tuning profile);
* ``tune`` — measure backend x chunk-size (x dtype) grids for a spec's
  pipelines through the streaming executor and write the winners to a
  JSON tuning file (:mod:`repro.tuning`);
* ``cache`` — ``stats`` (with per-region hit rates and on-disk bytes)
  and ``clear`` (disk log and/or ``--regions`` for the in-process
  compile caches) for the unified caches (:mod:`repro.compilecache`);
* ``store`` — ``stats`` and ``query`` for tiled columnar result stores
  written with ``sweep --stream --store DIR`` (:mod:`repro.store`);
  queries slice the stored tiles directly — nothing re-executes — and
  ``sweep --delta`` re-runs a sweep incrementally against a store;
* ``telemetry`` — ``summary`` renders the span tree and self-time
  hotspots of a trace recorded with ``sweep --trace``
  (:mod:`repro.telemetry`);
* ``case`` — evaluate a quantified dependability case (YAML/JSON GSN
  nodes + confidence models): render the argument and report every
  node's confidence, with ``--set node.param=value`` overrides;
* ``validate`` — resolve and type-check a sweep or case spec file
  without executing it, listing *all* errors and exiting non-zero on
  any;
* ``pipelines`` — list every registered sweep pipeline with its batch /
  stochastic capabilities and parameters.

Examples::

    repro-case assess --mode 0.003 --sigma 0.9 --confidence 0.7
    repro-case conservative --claim 1e-3 --margin 1
    repro-case tests --mode 0.003 --sigma 0.9 --bound 1e-2 --target 0.95
    repro-case growth --faults 10 --exposure 1000
    repro-case sweep --spec examples/full_library_sweep.yaml --csv out.csv
    repro-case sweep --spec examples/sweep_spec.yaml --stream \
        --out rows.jsonl --progress --cache results_cache.jsonl
    repro-case sweep --spec examples/sweep_spec.yaml --stream \
        --out rows.jsonl --trace sweep.trace.json --metrics
    repro-case tune --spec examples/sweep_spec.yaml --out tuning.json
    repro-case sweep --spec examples/sweep_spec.yaml --tuned tuning.json \
        --stream --out rows.jsonl
    repro-case sweep --spec examples/sweep_spec.yaml --stream \
        --store results_store --delta
    repro-case store stats results_store
    repro-case store query results_store --fix sigma=0.9 \
        --columns granted_level,sil2_confidence
    repro-case telemetry summary sweep.trace.json --top 5
    repro-case cache stats --path results_cache.jsonl
    repro-case cache clear --regions
    repro-case case --case examples/case_confidence.yaml --set A1.p_true=0.8
    repro-case validate --spec examples/full_library_sweep.yaml
    repro-case pipelines --verbose
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Mapping, Optional

from .core import AcarpTarget, ConfidenceProfile, design_for_claim
from .distributions import LogNormalJudgement
from .engine import (
    BACKENDS,
    CsvSink,
    JsonlSink,
    ResultCache,
    ResultSet,
    available_pipelines,
    get_pipeline,
    load_sweeps,
    run_sweep,
    run_sweep_streaming,
)
from .engine.dtypes import DTYPES
from .errors import ReproError
from .risk import plan_assurance
from .tuning.profile import DEFAULT_TUNING_PATH
from .sil import assess
from .update import worst_case_intensity, worst_case_mtbf
from .viz import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-case",
        description="Quantitative confidence in dependability cases "
        "(Bloomfield, Littlewood & Wright, DSN 2007).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_assess = sub.add_parser(
        "assess", help="classify a log-normal judgement into SILs"
    )
    p_assess.add_argument("--mode", type=float, required=True,
                          help="most-likely pfd (the judgement's peak)")
    p_assess.add_argument("--sigma", type=float, required=True,
                          help="spread of ln(pfd)")
    p_assess.add_argument("--confidence", type=float, default=0.70,
                          help="required one-sided confidence "
                          "(default 0.70, the IEC 61508 clause)")

    p_cons = sub.add_parser(
        "conservative",
        help="design the belief supporting a claim (Section 3.4)",
    )
    p_cons.add_argument("--claim", type=float, required=True,
                        help="claim bound y: P(failure) < y")
    p_cons.add_argument("--margin", type=float, default=1.0,
                        help="decades of margin for the belief bound "
                        "(default 1, the paper's Example 3)")
    p_cons.add_argument("--perfection", type=float, default=0.0,
                        help="probability mass on pfd = 0")

    p_tests = sub.add_parser(
        "tests", help="failure-free demands needed for a confidence target"
    )
    p_tests.add_argument("--mode", type=float, required=True)
    p_tests.add_argument("--sigma", type=float, required=True)
    p_tests.add_argument("--bound", type=float, required=True,
                         help="claim bound, e.g. 1e-2 for SIL 2")
    p_tests.add_argument("--target", type=float, required=True,
                         help="required confidence, e.g. 0.95")
    p_tests.add_argument("--cost-per-test", type=float, default=None,
                         help="optional cost per demand for the plan")

    p_growth = sub.add_parser(
        "growth", help="conservative growth bound N/(e t)"
    )
    p_growth.add_argument("--faults", type=int, required=True,
                          help="residual fault count N")
    p_growth.add_argument("--exposure", type=float, required=True,
                          help="failure-free exposure t (hours)")

    p_sweep = sub.add_parser(
        "sweep",
        help="run a batched scenario sweep from a YAML/JSON spec file",
    )
    p_sweep.add_argument("--spec", required=True,
                         help="path to the sweep spec (YAML or JSON)")
    p_sweep.add_argument("--backend", default="auto", choices=list(BACKENDS),
                         help="execution backend (default: auto — "
                         "vectorised when the pipeline supports it)")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="worker count for thread/process backends")
    p_sweep.add_argument("--csv", default=None, metavar="PATH",
                         help="also export the results as CSV")
    p_sweep.add_argument("--limit", type=int, default=None,
                         help="print at most this many rows")
    p_sweep.add_argument("--stream", action="store_true",
                         help="execute chunk-by-chunk in constant memory, "
                         "writing rows to --out instead of collecting "
                         "them (the million-scenario path)")
    p_sweep.add_argument("--out", default=None, metavar="PATH",
                         help="output file for --stream (JSONL or CSV)")
    p_sweep.add_argument("--format", default=None,
                         choices=["jsonl", "csv"], dest="out_format",
                         help="streamed output format (default: from the "
                         "--out extension, else jsonl)")
    p_sweep.add_argument("--chunk-size", type=int, default=None,
                         dest="chunk_size", metavar="N",
                         help="scenarios per streamed chunk")
    p_sweep.add_argument("--shards", type=int, default=None, metavar="K",
                         help="split the streamed sweep across K worker "
                         "processes with strictly ordered merge — output "
                         "is bit-identical to a single-process run, and "
                         "a JSONL --out gets a checkpoint manifest")
    p_sweep.add_argument("--resume", action="store_true",
                         help="resume a killed --stream sweep from its "
                         "checkpoint manifest, skipping completed chunks "
                         "(final output is byte-identical to an "
                         "uninterrupted run)")
    p_sweep.add_argument("--store", default=None, metavar="DIR",
                         help="with --stream: also write a tiled columnar "
                         "result store (NumPy tiles + manifest) to DIR, "
                         "queryable with `repro-case store` and "
                         "re-runnable incrementally with --delta")
    p_sweep.add_argument("--delta", action="store_true",
                         help="incremental re-run against --store DIR: "
                         "tiles whose content fingerprints already exist "
                         "in the store's manifest are reused, only "
                         "changed/missing tiles execute; the finished "
                         "store is bit-identical to a from-scratch run")
    p_sweep.add_argument("--tile-scenarios", type=int, default=None,
                         dest="tile_scenarios", metavar="N",
                         help="target scenarios per store tile "
                         "(default 16384); smaller tiles make deltas "
                         "finer-grained at more files")
    p_sweep.add_argument("--progress", action="store_true",
                         help="report per-chunk progress on stderr "
                         "(with throughput and ETA)")
    p_sweep.add_argument("--cache", default=None, metavar="PATH",
                         dest="cache_path",
                         help="disk-persistent result cache (JSONL log; "
                         "created if missing, reused across runs)")
    p_sweep.add_argument("--trace", default=None, metavar="PATH",
                         help="record a trace of the run: Chrome "
                         "trace-event JSON (open in chrome://tracing or "
                         "Perfetto), or one span per line if PATH ends "
                         "in .jsonl")
    p_sweep.add_argument("--metrics", action="store_true",
                         help="collect engine metrics during the run and "
                         "print them afterwards")
    p_sweep.add_argument("--dtype", default=None,
                         choices=list(DTYPES),
                         help="parameter-plane precision (float64 is the "
                         "bit-exact default; float32 halves plane memory "
                         "at ~1e-5 tolerance)")
    p_sweep.add_argument("--tuned", nargs="?", const=DEFAULT_TUNING_PATH,
                         default=None, metavar="PATH",
                         help="run under a tuning profile written by "
                         "`repro-case tune` (default path: "
                         f"{DEFAULT_TUNING_PATH}); unset backend/"
                         "chunk-size/dtype come from the measured winner")

    p_tune = sub.add_parser(
        "tune",
        help="measure backend x chunk-size (x dtype) grids for the "
        "spec's pipelines and write the winners to a tuning file",
    )
    p_tune.add_argument("--spec", required=True,
                        help="sweep spec (YAML or JSON) whose pipelines "
                        "to tune — one representative sweep per pipeline")
    p_tune.add_argument("--out", default=DEFAULT_TUNING_PATH,
                        metavar="PATH",
                        help="tuning file to write (default: "
                        f"{DEFAULT_TUNING_PATH})")
    p_tune.add_argument("--backends", default=None, metavar="B1,B2,...",
                        help="comma-separated backends to try (default: "
                        "vectorized,serial,thread)")
    p_tune.add_argument("--chunk-sizes", default=None, dest="chunk_sizes",
                        metavar="N1,N2,...",
                        help="comma-separated chunk sizes to try "
                        "(default: 1024,4096,8192,16384)")
    p_tune.add_argument("--dtypes", default=None, metavar="D1,D2,...",
                        help="comma-separated dtypes to try "
                        "(default: float64 only)")
    p_tune.add_argument("--repeats", type=int, default=3,
                        help="timed rounds per configuration; the best "
                        "is kept (default 3)")
    p_tune.add_argument("--max-scenarios", type=int, default=None,
                        dest="max_scenarios", metavar="N",
                        help="measurement budget per configuration "
                        "(default 4096; sweeps are trimmed, not run "
                        "in full)")

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clear the unified caches",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats",
        help="entry/hit/miss counts for a disk result cache and the "
        "in-process compile-cache regions",
    )
    p_cache_stats.add_argument("--path", default=None, metavar="PATH",
                               help="disk result-cache log to inspect")
    p_cache_clear = cache_sub.add_parser(
        "clear", help="clear a disk result cache (truncates the log) "
        "and/or the in-process compile-cache regions"
    )
    p_cache_clear.add_argument("--path", default=None, metavar="PATH",
                               help="disk result-cache log to clear")
    p_cache_clear.add_argument("--regions", action="store_true",
                               help="also clear every in-process "
                               "compile-cache region")

    p_telemetry = sub.add_parser(
        "telemetry",
        help="inspect traces recorded with sweep --trace",
    )
    telemetry_sub = p_telemetry.add_subparsers(
        dest="telemetry_command", required=True
    )
    p_telemetry_summary = telemetry_sub.add_parser(
        "summary",
        help="aggregated span tree and self-time hotspots from a trace "
        "file (Chrome trace JSON or JSONL)",
    )
    p_telemetry_summary.add_argument(
        "trace", metavar="TRACE",
        help="trace file written by sweep --trace",
    )
    p_telemetry_summary.add_argument(
        "--top", type=int, default=10,
        help="hotspot rows to show (default 10; 0 = all)",
    )
    p_telemetry_summary.add_argument(
        "--depth", type=int, default=None,
        help="limit the span tree to this nesting depth",
    )

    p_store = sub.add_parser(
        "store",
        help="inspect or query a tiled columnar result store written "
        "by sweep --stream --store",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_store_stats = store_sub.add_parser(
        "stats",
        help="axes, columns, tile layout and on-disk bytes of a store",
    )
    p_store_stats.add_argument("path", metavar="DIR",
                               help="store directory (holds manifest.json)")
    p_store_query = store_sub.add_parser(
        "query",
        help="slice a store by fixing axes to grid values — answered "
        "from tiles, no scenario is re-executed",
    )
    p_store_query.add_argument("path", metavar="DIR",
                               help="store directory (holds manifest.json)")
    p_store_query.add_argument("--fix", action="append", default=[],
                               metavar="AXIS=VALUE",
                               help="fix one axis to a grid value "
                               "(repeatable), e.g. --fix S1.dependence=0.2")
    p_store_query.add_argument("--columns", default=None,
                               metavar="C1,C2,...",
                               help="comma-separated value columns "
                               "(default: all)")
    p_store_query.add_argument("--limit", type=int, default=20,
                               help="print at most this many rows "
                               "(default 20; 0 = all)")

    p_case = sub.add_parser(
        "case",
        help="evaluate a quantified dependability case from a YAML/JSON "
        "file",
    )
    p_case.add_argument("--case", required=True, metavar="PATH",
                        help="path to the case spec (nodes, support, "
                        "annotations, quantify)")
    p_case.add_argument("--set", action="append", default=[],
                        metavar="NODE.PARAM=VALUE", dest="overrides",
                        help="override a case parameter (repeatable), "
                        "e.g. --set A1.p_true=0.8")
    p_case.add_argument("--no-render", action="store_true",
                        help="skip the argument-graph rendering")

    p_validate = sub.add_parser(
        "validate",
        help="resolve and type-check a sweep or case spec without "
        "executing it",
    )
    p_validate.add_argument("--spec", required=True, metavar="PATH",
                            help="path to the sweep or case spec "
                            "(YAML or JSON)")

    p_pipelines = sub.add_parser(
        "pipelines",
        help="list the registered sweep pipelines and their capabilities",
    )
    p_pipelines.add_argument("--verbose", action="store_true",
                             help="also list each pipeline's parameters "
                             "(required ones marked *)")
    return parser


def _run_assess(args: argparse.Namespace) -> str:
    judgement = LogNormalJudgement.from_mode_sigma(args.mode, args.sigma)
    report = assess(judgement, required_confidence=args.confidence)
    profile = ConfidenceProfile(judgement)
    rows = [[f"SIL {level}", f"{confidence:.2%}"]
            for level, confidence in profile.band_confidences()]
    return (
        report.summary()
        + "\n\n"
        + format_table(["band or better", "confidence"], rows)
    )


def _run_conservative(args: argparse.Namespace) -> str:
    design = design_for_claim(
        args.claim, margin_decades=args.margin, perfection=args.perfection
    )
    return design.describe()


def _run_tests(args: argparse.Namespace) -> str:
    judgement = LogNormalJudgement.from_mode_sigma(args.mode, args.sigma)
    target = AcarpTarget(claim_bound=args.bound,
                         required_confidence=args.target)
    plan = plan_assurance(
        judgement, target,
        cost_per_test=args.cost_per_test if args.cost_per_test else 0.0,
    )
    return plan.describe()


def _run_growth(args: argparse.Namespace) -> str:
    intensity = worst_case_intensity(args.faults, args.exposure)
    mtbf = worst_case_mtbf(args.faults, args.exposure)
    return (
        f"worst-case failure intensity after {args.exposure:g} h with "
        f"{args.faults} residual faults: {intensity:.4g} /h "
        f"(MTBF >= {mtbf:.4g} h)"
    )


def _format_eta(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class _StreamProgress:
    """Per-chunk progress on stderr: counts, throughput, ETA.

    The ``chunk N/N (R/R scenarios)`` prefix is stable (scripts parse
    it); throughput and the remaining-time estimate are appended once a
    measurable amount of work has completed.
    """

    def __init__(self):
        import time

        self._clock = time.perf_counter
        self._start = self._clock()

    def __call__(self, done_chunks: int, n_chunks: int,
                 done_rows: int, n_rows: int) -> None:
        line = (
            f"chunk {done_chunks}/{n_chunks} "
            f"({done_rows}/{n_rows} scenarios)"
        )
        elapsed = self._clock() - self._start
        if elapsed > 0 and done_rows > 0:
            rate = done_rows / elapsed
            line += f", {rate:,.0f} rows/s"
            remaining = n_rows - done_rows
            if remaining > 0:
                line += f", eta {_format_eta(remaining / rate)}"
        print(line, file=sys.stderr, flush=True)


def _run_sweep_streaming(args: argparse.Namespace,
                         sweeps, cache) -> str:
    if args.out is None and args.store is None:
        raise ReproError(
            "--stream needs --out PATH (row stream) and/or --store DIR "
            "(tiled columnar store)"
        )
    if len(sweeps) > 1:
        raise ReproError(
            "--stream runs one sweep per output file; the spec defines "
            f"{len(sweeps)} — split it or drop --stream"
        )
    if args.delta:
        if args.store is None:
            raise ReproError("--delta needs --store DIR to diff against")
        if args.out is not None:
            raise ReproError(
                "--delta writes only the tile store (row sinks would "
                "re-emit every row); drop --out"
            )
        if args.shards is not None or args.resume:
            raise ReproError(
                "--delta runs single-process (skipped tiles make "
                "sharding moot); drop --shards/--resume"
            )
    if args.tile_scenarios is not None and args.store is None:
        raise ReproError("--tile-scenarios only applies with --store")
    out_format = None
    sinks: List = []
    if args.out is not None:
        out_format = args.out_format
        if out_format is None:
            out_format = (
                "csv" if str(args.out).lower().endswith(".csv") else "jsonl"
            )
        if (args.shards is not None or args.resume) and out_format != "jsonl":
            raise ReproError(
                "--shards/--resume checkpoint against a JSONL --out; "
                "use --format jsonl"
            )
        sinks.append((CsvSink if out_format == "csv" else JsonlSink)(args.out))
    if args.store is not None:
        from .store import TileSink

        sinks.append(
            TileSink(args.store, tile_scenarios=args.tile_scenarios)
        )
    meta = run_sweep_streaming(
        sweeps[0],
        backend=args.backend,
        max_workers=args.workers,
        chunk_size=args.chunk_size,
        dtype=args.dtype,
        cache=cache,
        sinks=tuple(sinks),
        progress=_StreamProgress() if args.progress else None,
        shards=args.shards,
        resume=args.resume,
        delta=args.delta,
    )
    stages = meta.get("stage_timings", {})
    stage_line = ", ".join(
        f"{stage.removesuffix('_s')} {stages[stage]:.3f}s"
        for stage in ("plan_s", "compile_s", "execute_s", "sink_s")
        if stage in stages
    )
    resumed_note = ""
    if meta.get("resumed"):
        resumed_note = (
            f" (resumed: {meta['resumed_chunks']} chunks / "
            f"{meta['resumed_rows']} rows skipped)"
        )
    retry_note = (
        f", {meta['retries']} worker retries" if meta.get("retries") else ""
    )
    delta_note = ""
    if meta.get("delta"):
        delta_note = (
            f", delta: {meta['tiles_executed']}/{meta['tiles_total']} "
            f"tiles executed ({meta['tiles_skipped']} skipped, "
            f"{meta['tiles_moved']} moved, {meta['rows_executed']} rows "
            f"computed, {meta['bytes_reused']} bytes reused)"
        )
    destinations = []
    if args.out is not None:
        destinations.append(f"{args.out} ({out_format})")
    if args.store is not None:
        destinations.append(f"store {args.store}")
    return (
        f"{meta['rows']} rows streamed to {' + '.join(destinations)}, "
        f"pipeline={meta['pipeline']}, backend={meta['backend']}, "
        f"{meta['n_chunks']} chunks of <= {meta['chunk_size']}, "
        f"dtype={meta['dtype']}"
        + (" (tuned)" if meta.get("tuned") else "")
        + resumed_note + retry_note + delta_note
        + f", cache {meta['cache_hits']} hit / {meta['cache_misses']} miss, "
        f"{meta['elapsed_s']:.3f}s"
        + (f"\nstages: {stage_line}" if stage_line else "")
    )


def _metrics_report() -> str:
    """Active metrics instruments as a table (zero-valued ones omitted)."""
    from .telemetry import metrics

    rows = []
    for name, snap in metrics.snapshot().items():
        if snap["type"] == "histogram":
            if snap["count"]:
                mean = snap["total"] / snap["count"]
                rows.append([
                    name, "histogram",
                    f"n={snap['count']} total={snap['total']:.6f}s "
                    f"mean={mean:.6f}s",
                ])
        elif snap["value"]:
            value = snap["value"]
            rows.append([
                name, snap["type"],
                f"{value:g}" if snap["type"] == "gauge" else f"{value}",
            ])
    if not rows:
        return "metrics: (no instrument recorded a value)"
    return "metrics:\n" + format_table(["metric", "type", "value"], rows)


def _run_sweep(args: argparse.Namespace) -> str:
    if args.limit is not None and args.limit < 0:
        raise ReproError(f"--limit must be non-negative, got {args.limit}")
    try:
        sweeps = load_sweeps(args.spec)
    except OSError as exc:
        raise ReproError(f"cannot read spec file {args.spec}: {exc}") from exc
    cache = (
        ResultCache(path=args.cache_path)
        if args.cache_path is not None else None
    )
    if not args.stream:
        for flag, name in ((args.out, "--out"),
                           (args.out_format, "--format"),
                           (args.progress, "--progress"),
                           (args.shards, "--shards"),
                           (args.resume, "--resume"),
                           (args.store, "--store"),
                           (args.delta, "--delta"),
                           (args.tile_scenarios, "--tile-scenarios")):
            if flag:
                raise ReproError(f"{name} only applies with --stream")

    from .telemetry import capture_trace, disable_metrics, enable_metrics
    from .tuning.profile import load_profile, set_active_profile

    previous_profile = None
    tuned = args.tuned is not None
    if tuned:
        previous_profile = set_active_profile(load_profile(args.tuned))
    if args.metrics:
        enable_metrics(reset=True)
    try:
        if args.trace is not None:
            with capture_trace() as trace:
                report = (
                    _run_sweep_streaming(args, sweeps, cache)
                    if args.stream else
                    _run_sweep_collect(args, sweeps, cache)
                )
            if str(args.trace).lower().endswith(".jsonl"):
                trace.write_jsonl(args.trace)
            else:
                trace.write_chrome_trace(args.trace)
            note = f"trace written to {args.trace} ({len(trace)} spans"
            if trace.dropped:
                note += f", {trace.dropped} dropped beyond the cap"
            note += "); inspect with `repro-case telemetry summary` or Perfetto"
            report += "\n" + note
        else:
            report = (
                _run_sweep_streaming(args, sweeps, cache)
                if args.stream else
                _run_sweep_collect(args, sweeps, cache)
            )
    finally:
        if args.metrics:
            disable_metrics()
        if tuned:
            set_active_profile(previous_profile)
    if tuned:
        report += f"\ntuning profile: {args.tuned}"
    if args.metrics:
        report += "\n" + _metrics_report()
    return report


def _run_sweep_collect(args: argparse.Namespace, sweeps, cache) -> str:
    lines: List[str] = []
    combined = []
    for index, spec in enumerate(sweeps):
        result = run_sweep(
            spec, backend=args.backend, max_workers=args.workers,
            chunk_size=args.chunk_size, dtype=args.dtype, cache=cache,
        )
        label = spec.name or spec.pipeline
        if len(sweeps) > 1:
            # Multi-pipeline CSVs need attribution columns: different
            # sweeps can share parameter names (mode, sigma, ...).
            from .engine import ScenarioResult

            combined.extend(
                ScenarioResult(
                    r.spec,
                    {"sweep": label, "pipeline": spec.pipeline, **r.values},
                    from_cache=r.from_cache,
                )
                for r in result.results
            )
            lines.append(f"--- sweep {index + 1}/{len(sweeps)}: {label} ---")
        else:
            combined.extend(result.results)
        lines.append(result.to_table(limit=args.limit))
        if args.limit is not None and len(result) > args.limit:
            lines.append(f"... ({len(result) - args.limit} more rows)")
        lines.append(result.summary())
    if args.csv:
        # One CSV across all sweeps; columns are the union, blank where a
        # pipeline does not produce them.
        try:
            ResultSet(combined).to_csv(args.csv)
        except OSError as exc:
            raise ReproError(
                f"cannot write csv to {args.csv}: {exc}"
            ) from exc
        lines.append(f"csv written to {args.csv}")
    return "\n".join(lines)


def _parse_overrides(items: List[str]) -> Dict[str, float]:
    overrides: Dict[str, float] = {}
    for item in items:
        name, separator, raw = item.partition("=")
        if not separator or not name:
            raise ReproError(
                f"--set expects NODE.PARAM=VALUE, got {item!r}"
            )
        try:
            overrides[name.strip()] = float(raw)
        except ValueError:
            raise ReproError(
                f"--set value for {name.strip()!r} must be a number, "
                f"got {raw!r}"
            ) from None
    return overrides


def _run_case(args: argparse.Namespace) -> str:
    from .arguments import load_case

    case = load_case(args.case)
    overrides = _parse_overrides(args.overrides)
    values = case.evaluate(overrides)
    root = case.graph.root_goal()
    lines: List[str] = []
    if not args.no_render:
        lines.append(case.graph.render())
        lines.append("")
    rows = [
        [identifier, case.graph.node(identifier).kind,
         f"{values[identifier]:.6f}"]
        for identifier in case.graph.topological_order()
        if identifier in values
    ]
    lines.append(format_table(["node", "kind", "confidence"], rows))
    top = values[root.identifier]
    lines.append("")
    lines.append(
        f"top-goal confidence P({root.identifier}) = {top:.6f} "
        f"(doubt {1.0 - top:.6f})"
    )
    if root.claim_bound is not None:
        lines.append(
            f"claim under argument: {root.text} (bound {root.claim_bound:g})"
        )
    return "\n".join(lines)


def _run_validate(args: argparse.Namespace) -> str:
    from .engine.spec import parse_spec_text, sweeps_from_data

    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ReproError(
            f"cannot read spec file {args.spec}: {exc}"
        ) from exc
    data = parse_spec_text(text, args.spec)
    errors: List[str] = []
    summary = ""
    if isinstance(data, Mapping) and "nodes" in data:
        from .arguments import QuantifiedCase

        try:
            case = QuantifiedCase.from_dict(data, validate=False)
        except ReproError as exc:
            errors.append(str(exc))
        else:
            errors.extend(case.validation_errors())
            if not errors:
                summary = (
                    f"case spec ok: {len(case.graph)} nodes, "
                    f"{len(case.parameter_defaults())} sweepable parameters"
                )
    else:
        sweeps = []
        try:
            sweeps = sweeps_from_data(data, args.spec)
        except ReproError as exc:
            errors.append(str(exc))
        n_scenarios = 0
        for index, sweep in enumerate(sweeps):
            label = sweep.name or f"sweep {index + 1} ({sweep.pipeline})"
            try:
                pipeline = get_pipeline(sweep.pipeline)
            except ReproError as exc:
                errors.append(f"{label}: {exc}")
                continue
            seen = set()
            for scenario in sweep.expand():
                n_scenarios += 1
                try:
                    pipeline.resolve(scenario.params)
                except ReproError as exc:
                    message = f"{label}: {exc}"
                    if message not in seen:
                        seen.add(message)
                        errors.append(message)
        summary = (
            f"spec ok: {len(sweeps)} sweep(s), {n_scenarios} scenario(s), "
            f"all parameters resolve"
        )
    if errors:
        listing = "\n".join(f"  - {error}" for error in errors)
        raise ReproError(
            f"{args.spec} failed validation "
            f"({len(errors)} error(s)):\n{listing}"
        )
    return summary


def _run_pipelines(args: argparse.Namespace) -> str:
    rows = []
    details: List[str] = []
    for name in available_pipelines():
        pipeline = get_pipeline(name)
        rows.append([
            name,
            "yes" if pipeline.supports_batch else "no",
            "yes" if not pipeline.deterministic else "no",
            len(pipeline.defaults),
        ])
        if args.verbose:
            params = ", ".join(
                f"{key}*" if key in pipeline.required else key
                for key in pipeline.defaults
            )
            details.append(f"{name}: {params}")
    table = format_table(
        ["pipeline", "batched", "stochastic", "n_params"], rows
    )
    if details:
        table += "\n\nparameters (* = required):\n" + "\n".join(details)
    return table


def _count_log_keys(path: str) -> int:
    """Distinct keys in a cache log, counted without building a cache.

    A bounded :class:`ResultCache` replay would cap the count at its
    ``maxsize``; a line scan reports the true entry count of any log.
    """
    import json

    keys = set()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "key" in entry:
                keys.add(str(entry["key"]))
    return len(keys)


def _run_cache(args: argparse.Namespace) -> str:
    import os

    from .compilecache import cache_stats

    if args.cache_command == "clear":
        if args.path is None and not args.regions:
            raise ReproError(
                "cache clear needs --path PATH and/or --regions"
            )
        lines: List[str] = []
        if args.path is not None:
            if not os.path.exists(args.path):
                raise ReproError(f"no cache log at {args.path}")
            entries = _count_log_keys(args.path)
            with open(args.path, "w", encoding="utf-8"):
                pass
            lines.append(
                f"cleared {entries} cached result(s) from {args.path}"
            )
        if args.regions:
            from .compilecache import clear_all_regions

            names = sorted(cache_stats())
            clear_all_regions()
            lines.append(
                "cleared in-process compile-cache region(s): "
                + (", ".join(names) if names else "(none created yet)")
            )
        return "\n".join(lines)

    lines = []
    if args.path is not None:
        if not os.path.exists(args.path):
            raise ReproError(f"no cache log at {args.path}")
        size = os.path.getsize(args.path)
        lines.append(
            f"disk result cache {args.path}: "
            f"{_count_log_keys(args.path)} entries, {size} bytes"
        )
        lines.append("")
    lines.append("in-process compile-cache regions:")
    stats = cache_stats()
    if not stats:
        lines.append("  (none created yet)")
    else:
        rows = []
        for name, region in stats.items():
            lookups = region["hits"] + region["misses"]
            rate = (
                f"{region['hits'] / lookups:.1%}" if lookups else "-"
            )
            rows.append([
                name, region["entries"], region["hits"],
                region["misses"], rate,
                # Persisted regions report their JSONL log's size;
                # memory-only ones have no on-disk footprint.
                str(region["bytes"]) if "bytes" in region else "-",
            ])
        lines.append(format_table(
            ["region", "entries", "hits", "misses", "hit rate",
             "disk bytes"], rows
        ))
    return "\n".join(lines)


def _parse_csv_list(raw: Optional[str], cast, flag: str):
    """``"a,b,c"`` → tuple, or None when the flag was not given."""
    if raw is None:
        return None
    items = [piece.strip() for piece in raw.split(",") if piece.strip()]
    if not items:
        raise ReproError(f"{flag} needs at least one value")
    try:
        return tuple(cast(item) for item in items)
    except ValueError as exc:
        raise ReproError(f"invalid {flag} value: {exc}") from exc


def _run_tune(args: argparse.Namespace) -> str:
    from .tuning import autotune
    from .tuning.autotune import (
        DEFAULT_BACKENDS,
        DEFAULT_CHUNK_SIZES,
        DEFAULT_MAX_SCENARIOS,
    )

    try:
        sweeps = load_sweeps(args.spec)
    except OSError as exc:
        raise ReproError(f"cannot read spec file {args.spec}: {exc}") from exc
    backends = _parse_csv_list(args.backends, str, "--backends")
    chunk_sizes = _parse_csv_list(args.chunk_sizes, int, "--chunk-sizes")
    dtypes = _parse_csv_list(args.dtypes, str, "--dtypes")
    if args.repeats < 1:
        raise ReproError(f"--repeats must be positive, got {args.repeats}")
    max_scenarios = args.max_scenarios
    if max_scenarios is not None and max_scenarios < 1:
        raise ReproError(
            f"--max-scenarios must be positive, got {max_scenarios}"
        )

    def progress(pipeline: str, index: int, total: int) -> None:
        print(f"tuning {pipeline}: config {index + 1}/{total}",
              file=sys.stderr, flush=True)

    profile = autotune(
        sweeps,
        backends=backends if backends is not None else DEFAULT_BACKENDS,
        chunk_sizes=(
            chunk_sizes if chunk_sizes is not None else DEFAULT_CHUNK_SIZES
        ),
        dtypes=dtypes if dtypes is not None else ("float64",),
        repeats=args.repeats,
        max_scenarios=(
            max_scenarios if max_scenarios is not None
            else DEFAULT_MAX_SCENARIOS
        ),
        progress=progress,
    )
    try:
        profile.save(args.out)
    except OSError as exc:
        raise ReproError(
            f"cannot write tuning file {args.out}: {exc}"
        ) from exc
    rows = []
    for pipeline in profile.pipelines():
        for bucket, entry in sorted(profile.bucket_entries(pipeline).items()):
            default = next(
                (point for point in entry.grid if point.get("default")), None
            )
            speedup = (
                f"{entry.rows_per_s / default['rows_per_s']:.2f}x"
                if default and default["rows_per_s"] > 0 else "-"
            )
            rows.append([
                pipeline, bucket, entry.backend, str(entry.chunk_size),
                entry.dtype, f"{entry.rows_per_s:,.0f}", speedup,
            ])
    table = format_table(
        ["pipeline", "shape", "backend", "chunk", "dtype", "rows/s",
         "vs default"],
        rows,
    )
    return (
        table
        + f"\ntuning profile written to {args.out} "
        f"({len(profile)} pipeline(s)); "
        "use it with `repro-case sweep --tuned"
        + (f" {args.out}" if args.out != DEFAULT_TUNING_PATH else "")
        + "`"
    )


def _parse_fix(items: List[str], store) -> Dict[str, object]:
    """``AXIS=VALUE`` pairs resolved against the store's grid values."""
    axes = dict(store.axes)
    fixed: Dict[str, object] = {}
    for item in items:
        name, separator, raw = item.partition("=")
        name = name.strip()
        if not separator or not name:
            raise ReproError(f"--fix expects AXIS=VALUE, got {item!r}")
        if name not in axes:
            raise ReproError(
                f"store has no axis {name!r}; axes: {store.axis_names}"
            )
        raw = raw.strip()
        value: object = raw
        for values in (axes[name],):
            # Prefer an exact textual match, then a numeric one, so
            # `--fix sigma=0.9` finds the float 0.9 on the grid.
            textual = next(
                (v for v in values if str(v) == raw), None
            )
            if textual is not None:
                value = textual
                break
            try:
                number = float(raw)
            except ValueError:
                break
            numeric = next(
                (v for v in values
                 if isinstance(v, (int, float)) and float(v) == number),
                None,
            )
            if numeric is not None:
                value = numeric
        fixed[name] = value
    return fixed


def _run_store(args: argparse.Namespace) -> str:
    from .errors import DomainError
    from .store import TileStore

    try:
        store = TileStore.open(args.path)
    except DomainError as exc:
        raise ReproError(str(exc)) from exc

    if args.store_command == "stats":
        stats = store.stats()
        lines = [
            f"tile store {stats['path']}: pipeline={stats['pipeline']}, "
            f"{stats['n_scenarios']} scenarios in {stats['n_tiles']} "
            f"tiles of shape {tuple(stats['tile_shape'])} over grid "
            f"{tuple(stats['grid_shape'])}, {stats['bytes']} bytes",
            f"plan fingerprint:  {stats['plan_fingerprint']}",
            f"store fingerprint: {stats['store_fingerprint']}",
        ]
        if stats["axes"]:
            lines.append("axes:")
            lines.append(format_table(
                ["axis", "values"],
                [[name, str(count)] for name, count in stats["axes"]],
            ))
        lines.append("columns:")
        lines.append(format_table(
            ["column", "dtype", "bytes"],
            [[name, meta["dtype"], str(meta["bytes"])]
             for name, meta in sorted(stats["columns"].items())],
        ))
        return "\n".join(lines)

    # query
    if args.limit is not None and args.limit < 0:
        raise ReproError(f"--limit must be non-negative, got {args.limit}")
    columns = None
    if args.columns is not None:
        columns = [c.strip() for c in args.columns.split(",") if c.strip()]
        if not columns:
            raise ReproError("--columns needs at least one column name")
    fixed = _parse_fix(args.fix, store)
    try:
        result = store.slice(columns=columns, **fixed)
    except DomainError as exc:
        raise ReproError(str(exc)) from exc
    records = list(result.records())
    limit = args.limit if args.limit else len(records)
    header = (
        [name for name in fixed]
        + [name for name, _values in result.axes]
        + result.columns
    )
    rows = [
        [str(record[column]) for column in header]
        for record in records[:limit]
    ]
    lines = [format_table(header, rows)] if rows else ["(empty slice)"]
    if len(records) > limit:
        lines.append(f"... ({len(records) - limit} more rows)")
    shape = " x ".join(str(s) for s in result.shape) or "scalar"
    lines.append(
        f"{len(records)} rows ({shape}) from {store.n_tiles}-tile store; "
        f"answered from tiles, 0 scenarios executed"
    )
    return "\n".join(lines)


def _run_telemetry(args: argparse.Namespace) -> str:
    from .telemetry import load_trace, render_summary

    if args.top is not None and args.top < 0:
        raise ReproError(f"--top must be non-negative, got {args.top}")
    if args.depth is not None and args.depth < 0:
        raise ReproError(f"--depth must be non-negative, got {args.depth}")
    spans = load_trace(args.trace)
    if not spans:
        return f"{args.trace}: trace contains no spans"
    return render_summary(spans, top=args.top, max_depth=args.depth)


_RUNNERS = {
    "assess": _run_assess,
    "conservative": _run_conservative,
    "tests": _run_tests,
    "growth": _run_growth,
    "sweep": _run_sweep,
    "tune": _run_tune,
    "case": _run_case,
    "validate": _run_validate,
    "pipelines": _run_pipelines,
    "cache": _run_cache,
    "store": _run_store,
    "telemetry": _run_telemetry,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(_RUNNERS[args.command](args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
