"""Simulation of the paper's expert elicitation experiment (Figure 5)."""

from .cemsis import CaseStudy, public_domain_case_study
from .protocol import ExperimentResult, build_panel, run_panel

__all__ = [
    "CaseStudy",
    "public_domain_case_study",
    "ExperimentResult",
    "build_panel",
    "run_panel",
]
