"""Simulation of the paper's 12-expert experiment (Figure 5 / Section 3.3).

The paper reports: 12 experts, four phases, a minority of 3 "doubters"
expressing their doubt as very high failure rates, and a main group about
90 % confident the system was SIL 2 or better — while the pooled pfd
(0.01) sat exactly on the SIL 2/1 boundary.  The experiment's role in the
paper is to add plausibility to asymmetric judgement distributions.

:func:`run_panel` simulates a seeded panel with that structure and
:class:`ExperimentResult` exposes the Figure 5 quantities: per-expert
final judgements, main-group pooled confidence in the target SIL, and the
pooled mean pfd.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..distributions import JudgementDistribution
from ..elicitation import (
    FourPhaseProtocol,
    PanelResult,
    SyntheticExpert,
    linear_pool,
    log_pool,
)
from ..errors import DomainError
from ..numerics import ensure_rng
from ..sil import SilBand
from .cemsis import CaseStudy, public_domain_case_study

__all__ = ["ExperimentResult", "build_panel", "run_panel"]


@dataclass(frozen=True)
class ExperimentResult:
    """The Figure 5 quantities from a simulated panel."""

    case_study: CaseStudy
    panel: PanelResult
    pooled_all: JudgementDistribution
    pooled_main_group: JudgementDistribution
    n_experts: int
    n_doubters: int

    @property
    def target_band(self) -> SilBand:
        return self.case_study.target_band

    def group_confidence_in_target(self) -> float:
        """Main group's pooled confidence in the target SIL or better."""
        return self.target_band.confidence_better(self.pooled_main_group)

    def group_mean_pfd(self) -> float:
        """The main group's pooled mean pfd — the paper's headline 0.01.

        ("The group were about 90% confident that the system was in SIL2
        or better yet the resulting pfd (0.01) is on the 2-1 boundary.")
        """
        return self.pooled_main_group.mean()

    def pooled_mean_pfd(self) -> float:
        """Pooled mean pfd across the whole panel (doubters included).

        The doubters' very-high-rate judgements dominate this figure — the
        reason the paper reports the main group separately.
        """
        return self.pooled_all.mean()

    def mean_on_boundary(self, tolerance_decades: float = 0.35) -> bool:
        """Whether the group mean sits near the SIL 2/1 boundary (0.01)."""
        boundary = self.target_band.upper
        mean = self.group_mean_pfd()
        if mean <= 0:
            return False
        return abs(float(np.log10(mean / boundary))) <= tolerance_decades

    def per_expert_final(self) -> List[tuple]:
        """``(name, is_doubter, mode, mean, P(target or better))`` rows."""
        rows = []
        for judgement in self.panel.final_phase():
            dist = judgement.judgement
            rows.append(
                (
                    judgement.expert_name,
                    judgement.is_doubter,
                    dist.mode(),
                    dist.mean(),
                    self.target_band.confidence_better(dist),
                )
            )
        return rows


def build_panel(
    n_experts: int = 12,
    n_doubters: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> List[SyntheticExpert]:
    """A panel matching the paper's composition.

    Main-group experts get modest personal biases and spreads scattered
    around sigma ~ 0.9 (the broad-judgement regime of Figure 1); doubters
    centre two decades worse.
    """
    if n_experts < 1:
        raise DomainError("panel needs at least one expert")
    if not 0 <= n_doubters <= n_experts:
        raise DomainError("doubter count must lie in [0, n_experts]")
    rng = ensure_rng(rng if rng is not None else 2007)
    experts = []
    for index in range(n_experts):
        is_doubter = index < n_doubters
        experts.append(
            SyntheticExpert(
                name=f"expert-{index + 1:02d}",
                bias_decades=float(rng.normal(0.0, 0.3)),
                sigma=float(rng.uniform(0.7, 1.1)),
                is_doubter=is_doubter,
            )
        )
    return experts


def run_panel(
    case_study: Optional[CaseStudy] = None,
    n_experts: int = 12,
    n_doubters: int = 3,
    seed: int = 2007,
    pool: str = "linear",
    rng: Optional[np.random.Generator] = None,
) -> ExperimentResult:
    """Run the four-phase protocol on a synthetic panel.

    ``pool`` selects the aggregation rule for the ablation in bench E5:
    ``"linear"`` (mixture; the default and the rule matching the paper's
    reported group behaviour) or ``"log"`` (geometric consensus).

    One generator drives the whole simulation — panel construction and
    every phase — so a run is a pure function of ``seed``.  Pass ``rng``
    to thread an external generator through instead (it takes precedence
    over ``seed``); sweep engines use this to give each scenario its own
    spawned stream.
    """
    if pool not in ("linear", "log"):
        raise DomainError(f"pool must be 'linear' or 'log', got {pool!r}")
    case = case_study if case_study is not None else public_domain_case_study()
    rng = ensure_rng(rng if rng is not None else seed)
    experts = build_panel(n_experts, n_doubters, rng)
    protocol = FourPhaseProtocol(experts)
    panel = protocol.run(case.reference_mode, rng)

    final = panel.final_phase()
    all_judgements = [j.judgement for j in final]
    main_judgements = [j.judgement for j in final if not j.is_doubter]
    if not main_judgements:
        raise DomainError("panel has no main-group experts to pool")
    pool_fn = linear_pool if pool == "linear" else log_pool
    return ExperimentResult(
        case_study=case,
        panel=panel,
        pooled_all=pool_fn(all_judgements),
        pooled_main_group=pool_fn(main_judgements),
        n_experts=n_experts,
        n_doubters=n_doubters,
    )
