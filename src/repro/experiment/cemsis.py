"""Synthetic stand-in for the CEMSIS public-domain case study.

The paper's experiment briefed experts on "a safety critical system and
the implementation of a particular safety function", based on the public
domain case study of the European nuclear R&D project CEMSIS
(www.cemsis.org — no longer reachable; see DESIGN.md §5 for the
substitution argument).  This module ships a self-contained synthetic
description with the features the experiment needs: a nuclear C&I
protection function, a target SIL, and a reference difficulty (the pfd
the briefing material actually supports) around which experts scatter.

Determinism note: the case study itself is deliberately free of random
state — all stochasticity in the experiment lives in
:func:`repro.experiment.protocol.run_panel`, which threads one
``numpy.random.Generator`` through panel construction and every phase,
so a simulated experiment is a pure function of its seed (or of the
generator a sweep hands it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import DomainError
from ..sil import LOW_DEMAND, SilBand

__all__ = ["CaseStudy", "public_domain_case_study"]


@dataclass(frozen=True)
class CaseStudy:
    """A briefing package for an elicitation panel."""

    name: str
    description: str
    safety_function: str
    target_level: int
    reference_mode: float
    demands_per_year: float
    additional_information: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.reference_mode <= 0:
            raise DomainError("reference mode must be a positive pfd")
        if self.demands_per_year <= 0:
            raise DomainError("demand rate must be positive")
        if self.target_level not in LOW_DEMAND.levels:
            raise DomainError(
                f"target level {self.target_level} not a low-demand SIL"
            )

    @property
    def target_band(self) -> SilBand:
        return LOW_DEMAND.band(self.target_level)

    def briefing(self) -> str:
        """The phase-1 presentation text."""
        lines = [
            f"Case study: {self.name}",
            self.description,
            f"Safety function under assessment: {self.safety_function}",
            f"Claimed integrity target: SIL {self.target_level} "
            f"(pfd < {self.target_band.upper:g})",
            f"Demand profile: about {self.demands_per_year:g} demands/year.",
        ]
        return "\n".join(lines)


def public_domain_case_study() -> CaseStudy:
    """The synthetic briefing used by the panel simulation (experiment E5).

    The reference mode 0.003 places the honestly supportable judgement in
    the middle of SIL 2 — the same anchoring the paper's modelling section
    uses — so the simulated panel exercises exactly the distributional
    regime of Figures 1-5.
    """
    return CaseStudy(
        name="Synthetic CEMSIS protection action",
        description=(
            "A computer-based instrumentation and control system for a "
            "pressurised-water reactor auxiliary feed function.  The "
            "software (about 30k lines of structured code, produced to a "
            "graded quality plan) monitors plant parameters and initiates "
            "a protection action on demand.  Development evidence "
            "includes unit and integration test records, static analysis "
            "of the protection logic, and site acceptance testing; "
            "operating experience from a predecessor system is available "
            "but of contested relevance."
        ),
        safety_function=(
            "initiate auxiliary feedwater on loss of main feed (demand mode)"
        ),
        target_level=2,
        reference_mode=0.003,
        demands_per_year=2.0,
        additional_information=(
            "unit test coverage summary (94% branch coverage)",
            "static analysis report: 3 unresolved anomalies, all argued benign",
            "predecessor system field record: 7 years, 11 demands, no failure",
            "independent V&V audit of the quality plan",
        ),
    )
