"""SIL bands, classification of judgements into bands, claim discounting."""

from .bands import (
    HIGH_DEMAND,
    LOW_DEMAND,
    BandScheme,
    SilBand,
    high_demand_band,
    low_demand_band,
)
from .classification import (
    SilAssessment,
    assess,
    classify_by_confidence,
    classify_by_mean,
    classify_by_mode,
)
from .discounting import (
    DISCOUNT_BY_RIGOUR,
    ArgumentRigour,
    DiscountPolicy,
    claimable_level,
    discounted_level,
    mode_vs_claim_gap,
)

__all__ = [
    "HIGH_DEMAND",
    "LOW_DEMAND",
    "BandScheme",
    "SilBand",
    "high_demand_band",
    "low_demand_band",
    "SilAssessment",
    "assess",
    "classify_by_confidence",
    "classify_by_mean",
    "classify_by_mode",
    "DISCOUNT_BY_RIGOUR",
    "ArgumentRigour",
    "DiscountPolicy",
    "claimable_level",
    "discounted_level",
    "mode_vs_claim_gap",
]
