"""Safety integrity level (SIL) bands.

IEC 61508 defines SIL n for a low-demand safety function as an average
probability of dangerous failure on demand in ``[10^-(n+1), 10^-n)``, and
for high-demand / continuous operation as a dangerous failure rate per
hour in ``[10^-(n+1), 10^-n)`` shifted by four decades.  The paper's
examples live in the low-demand table: SIL 2 is ``[10^-3, 10^-2)`` with
mid-band 0.003 used throughout.

This module models bands and band schemes generically so the same
machinery serves other levelled schemes (DO-178B mappings etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..distributions import JudgementDistribution
from ..errors import DomainError

__all__ = [
    "SilBand",
    "BandScheme",
    "LOW_DEMAND",
    "HIGH_DEMAND",
    "low_demand_band",
    "high_demand_band",
]


@dataclass(frozen=True)
class SilBand:
    """One integrity band: ``level`` with ``lower <= value < upper``.

    ``upper`` is the *claim bound*: confidence in band membership-or-better
    is ``P(value < upper)`` (the paper's one-sided confidence).
    """

    level: int
    lower: float
    upper: float

    def __post_init__(self):
        if self.lower < 0 or self.upper <= self.lower:
            raise DomainError(
                f"band requires 0 <= lower < upper, got [{self.lower}, {self.upper})"
            )

    def contains(self, value: float) -> bool:
        """Whether a point value falls inside this band."""
        return self.lower <= value < self.upper

    def geometric_midpoint(self) -> float:
        """Mid-band value on the log scale (0.003 for SIL 2 ~ sqrt(10)e-3).

        The paper calls 0.003 "the middle of SIL2"; the geometric midpoint
        of ``[1e-3, 1e-2)`` is ``10^-2.5 = 0.00316``, quoted as 0.003.
        """
        if self.lower <= 0:
            raise DomainError("geometric midpoint undefined for a zero lower bound")
        return float(np.sqrt(self.lower * self.upper))

    def membership_probability(self, dist: JudgementDistribution) -> float:
        """``P(lower <= X < upper)`` under a judgement distribution."""
        return max(
            float(dist.cdf(self.upper)) - float(dist.cdf(self.lower)), 0.0
        )

    def confidence_better(self, dist: JudgementDistribution) -> float:
        """``P(X < upper)`` — confidence the system is this band or better."""
        return float(dist.cdf(self.upper))

    def __str__(self) -> str:
        return f"SIL{self.level}[{self.lower:g}, {self.upper:g})"


class BandScheme:
    """An ordered set of contiguous integrity bands (higher level = better)."""

    def __init__(self, name: str, bands: Sequence[SilBand]):
        if not bands:
            raise DomainError("a band scheme needs at least one band")
        ordered = sorted(bands, key=lambda b: b.level)
        for lower_band, upper_band in zip(ordered, ordered[1:]):
            if upper_band.level != lower_band.level + 1:
                raise DomainError("band levels must be consecutive integers")
            if not np.isclose(upper_band.upper, lower_band.lower):
                raise DomainError(
                    "bands must tile contiguously: "
                    f"SIL{upper_band.level} upper {upper_band.upper} != "
                    f"SIL{lower_band.level} lower {lower_band.lower}"
                )
        self._name = name
        self._bands: Dict[int, SilBand] = {b.level: b for b in ordered}

    @property
    def name(self) -> str:
        return self._name

    @property
    def levels(self) -> List[int]:
        return sorted(self._bands)

    def band(self, level: int) -> SilBand:
        """The band for a given level (raises for unknown levels)."""
        if level not in self._bands:
            raise DomainError(
                f"{self._name} has no SIL {level} (levels {self.levels})"
            )
        return self._bands[level]

    def __iter__(self):
        return iter(self._bands[level] for level in self.levels)

    def __len__(self) -> int:
        return len(self._bands)

    def band_of(self, value: float) -> Optional[SilBand]:
        """The band containing a point value, or ``None`` if off-scale."""
        for band in self:
            if band.contains(value):
                return band
        return None

    def level_of(self, value: float) -> Optional[int]:
        """Level of the band containing ``value`` (None when off-scale).

        Values better (smaller) than the best band saturate to the top
        level, following the standard's practice of capping claims.
        """
        best = self._bands[self.levels[-1]]
        if 0 <= value < best.lower:
            return best.level
        band = self.band_of(value)
        return band.level if band is not None else None

    def boundaries(self) -> np.ndarray:
        """All interior band boundaries, ascending."""
        return np.array([self.band(level).upper for level in self.levels[1:]] +
                        [self.band(self.levels[0]).upper])

    def membership_distribution(
        self, dist: JudgementDistribution
    ) -> Dict[Optional[int], float]:
        """Probability of each band (and of falling off-scale either side).

        Keys are levels; off-scale-worse mass is keyed ``None`` at the bad
        end, off-scale-better mass is folded into the best band (a value
        better than SIL 4's lower bound is still at least SIL 4).
        """
        out: Dict[Optional[int], float] = {}
        levels = self.levels
        for level in levels:
            out[level] = self.band(level).membership_probability(dist)
        best = self.band(levels[-1])
        out[levels[-1]] += float(dist.cdf(best.lower))
        worst = self.band(levels[0])
        out[None] = max(1.0 - float(dist.cdf(worst.upper)), 0.0)
        return out


def _decade_bands(best_exponent: int, levels: Sequence[int]) -> List[SilBand]:
    """Bands ``SIL n = [10^-(n+1+shift), 10^-(n+shift))`` helper."""
    bands = []
    for level in levels:
        upper = 10.0 ** (best_exponent + (max(levels) - level))
        bands.append(SilBand(level=level, lower=upper / 10.0, upper=upper))
    return bands


#: IEC 61508 low-demand bands: SIL n has average pfd in [1e-(n+1), 1e-n).
LOW_DEMAND = BandScheme(
    "IEC 61508 low demand (average pfd)",
    [SilBand(level=n, lower=10.0 ** -(n + 1), upper=10.0**-n) for n in (1, 2, 3, 4)],
)

#: IEC 61508 high-demand / continuous bands: SIL n has dangerous failure
#: rate per hour in [1e-(n+5), 1e-(n+4)).
HIGH_DEMAND = BandScheme(
    "IEC 61508 high demand (dangerous failures per hour)",
    [SilBand(level=n, lower=10.0 ** -(n + 5), upper=10.0 ** -(n + 4))
     for n in (1, 2, 3, 4)],
)


def low_demand_band(level: int) -> SilBand:
    """The IEC 61508 low-demand band for SIL ``level``."""
    return LOW_DEMAND.band(level)


def high_demand_band(level: int) -> SilBand:
    """The IEC 61508 high-demand band for SIL ``level``."""
    return HIGH_DEMAND.band(level)
