"""Claim discounting: judging SIL n+1 to claim SIL n (paper Section 3.4).

The paper observes a heuristic real assessors use: evidence may point to
SIL 2, but the uncertainties make them *call it* SIL 1 — and conversely, a
better case results from judging the system "most likely SIL n+1" and
claiming SIL n with high confidence.  It cites the Sizewell B primary
protection system, where process doubts cost an order of magnitude in the
judged pfd, and argues process-based qualitative arguments should be
discounted by *at least two* levels (Section 4.3 / Conclusions).

This module encodes those heuristics as explicit, auditable policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..distributions import JudgementDistribution
from ..errors import ClaimError, DomainError
from .bands import BandScheme, LOW_DEMAND
from .classification import classify_by_confidence, classify_by_mode

__all__ = [
    "ArgumentRigour",
    "DISCOUNT_BY_RIGOUR",
    "discounted_level",
    "DiscountPolicy",
    "claimable_level",
]


class ArgumentRigour:
    """Named rigour grades for the argument supporting a SIL judgement."""

    #: Quantified worst-case analysis with validated data.
    QUANTITATIVE_CONSERVATIVE = "quantitative-conservative"
    #: Best-fit reliability growth model plus assumption margins.
    QUANTITATIVE_BEST_FIT = "quantitative-best-fit"
    #: Expert judgement anchored on standards compliance.
    STANDARDS_COMPLIANCE = "standards-compliance"
    #: Purely qualitative process argument.
    QUALITATIVE_PROCESS = "qualitative-process"

    ALL = (
        QUANTITATIVE_CONSERVATIVE,
        QUANTITATIVE_BEST_FIT,
        STANDARDS_COMPLIANCE,
        QUALITATIVE_PROCESS,
    )


#: Levels to subtract from the judged SIL per rigour grade.  The paper:
#: process-based qualitative arguments "could be reduced by (at least) 2
#: levels"; standards-compliance expert judgement "should really lead to a
#: greater than 1 reduction"; a conservative quantitative treatment needs
#: no heuristic discount beyond its own explicit uncertainty.
DISCOUNT_BY_RIGOUR = {
    ArgumentRigour.QUANTITATIVE_CONSERVATIVE: 0,
    ArgumentRigour.QUANTITATIVE_BEST_FIT: 1,
    ArgumentRigour.STANDARDS_COMPLIANCE: 1,
    ArgumentRigour.QUALITATIVE_PROCESS: 2,
}


def discounted_level(
    judged_level: int,
    rigour: str,
    scheme: BandScheme = LOW_DEMAND,
) -> Optional[int]:
    """Apply the rigour discount to a judged level.

    Returns ``None`` when the discount exhausts the scheme (no integrity
    claim can be made at all).
    """
    if rigour not in DISCOUNT_BY_RIGOUR:
        raise DomainError(
            f"unknown rigour {rigour!r}; expected one of {ArgumentRigour.ALL}"
        )
    if judged_level not in scheme.levels:
        raise ClaimError(f"judged level {judged_level} not in scheme {scheme.name}")
    claimed = judged_level - DISCOUNT_BY_RIGOUR[rigour]
    if claimed < min(scheme.levels):
        return None
    return claimed


@dataclass(frozen=True)
class DiscountPolicy:
    """A policy deciding the claimable SIL from a judgement distribution.

    ``required_confidence`` grants a level only when the one-sided
    confidence clears it; ``rigour`` applies the heuristic discount on top;
    ``claim_limit`` optionally caps the claim (the paper suggests linking a
    claim limit to the argument type).
    """

    required_confidence: float = 0.70
    rigour: str = ArgumentRigour.QUANTITATIVE_BEST_FIT
    claim_limit: Optional[int] = None

    def __post_init__(self):
        if not 0 < self.required_confidence < 1:
            raise DomainError("required confidence must lie strictly in (0, 1)")
        if self.rigour not in DISCOUNT_BY_RIGOUR:
            raise DomainError(f"unknown rigour {self.rigour!r}")


def claimable_level(
    dist: JudgementDistribution,
    policy: DiscountPolicy,
    scheme: BandScheme = LOW_DEMAND,
) -> Optional[int]:
    """The SIL claimable under a discount policy.

    Pipeline: grant the best level whose one-sided confidence clears the
    policy's requirement; subtract the rigour discount; apply the claim
    limit.  Returns ``None`` when nothing is claimable.
    """
    granted = classify_by_confidence(dist, policy.required_confidence, scheme)
    if granted is None:
        return None
    claimed = granted - DISCOUNT_BY_RIGOUR[policy.rigour]
    if policy.claim_limit is not None:
        claimed = min(claimed, policy.claim_limit)
    if claimed < min(scheme.levels):
        return None
    return claimed


def mode_vs_claim_gap(
    dist: JudgementDistribution,
    policy: DiscountPolicy,
    scheme: BandScheme = LOW_DEMAND,
) -> Optional[int]:
    """Gap between the mode's band and the policy's claimable level.

    Quantifies the paper's "judge SIL n+1, claim SIL n" effect for a given
    judgement and policy; ``None`` when either side is off-scale.
    """
    mode_level = classify_by_mode(dist, scheme)
    claimed = claimable_level(dist, policy, scheme)
    if mode_level is None or claimed is None:
        return None
    return mode_level - claimed
