"""Classifying a judgement distribution into a SIL.

The paper's Section 3 shows that "which SIL is this system?" has several
defensible answers that can disagree:

* the band containing the **mode** (the expert's "most likely" answer);
* the band containing the **mean** (what matters for risk, eq. (4));
* the best band achievable at a required **one-sided confidence** (what a
  regulator applying e.g. a 70 % clause would grant).

Figure 3's punchline is the disagreement between the first two: with the
mode mid-SIL 2 and confidence in SIL 2 below ~67 %, the mean is already
SIL 1.  :class:`SilAssessment` computes all three views side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..distributions import JudgementDistribution
from ..errors import DomainError
from .bands import BandScheme, LOW_DEMAND

__all__ = [
    "classify_by_mode",
    "classify_by_mean",
    "classify_by_confidence",
    "SilAssessment",
    "assess",
]


def classify_by_mode(
    dist: JudgementDistribution, scheme: BandScheme = LOW_DEMAND
) -> Optional[int]:
    """Level of the band containing the judgement's mode (peak)."""
    return scheme.level_of(dist.mode())


def classify_by_mean(
    dist: JudgementDistribution, scheme: BandScheme = LOW_DEMAND
) -> Optional[int]:
    """Level of the band containing the judgement's mean.

    The mean is the probability of failure on a randomly selected demand
    (paper eq. (4)); IEC 61508's "average probability of failure on
    demand" is exactly this quantity.
    """
    return scheme.level_of(dist.mean())


def classify_by_confidence(
    dist: JudgementDistribution,
    required_confidence: float,
    scheme: BandScheme = LOW_DEMAND,
) -> Optional[int]:
    """Best level claimable with at least the required one-sided confidence.

    Returns the highest level ``n`` with ``P(X < upper_n) >=
    required_confidence``, or ``None`` when even the weakest band cannot be
    claimed at that confidence.
    """
    if not 0 < required_confidence < 1:
        raise DomainError("required confidence must lie strictly in (0, 1)")
    granted: Optional[int] = None
    for band in scheme:  # ascending levels
        if band.confidence_better(dist) >= required_confidence:
            granted = band.level
    return granted


@dataclass(frozen=True)
class SilAssessment:
    """All classification views of one judgement, side by side."""

    scheme_name: str
    mode_value: float
    mean_value: float
    mode_level: Optional[int]
    mean_level: Optional[int]
    confidence_by_level: Dict[int, float]
    granted_level: Optional[int]
    required_confidence: float

    @property
    def optimistic_gap(self) -> int:
        """How many levels the mode view exceeds the mean view.

        A positive gap is the paper's warning sign: the "most likely" SIL
        flatters the system relative to the risk-relevant mean.
        """
        if self.mode_level is None or self.mean_level is None:
            return 0
        return self.mode_level - self.mean_level

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        conf = ", ".join(
            f"SIL{level}+: {confidence:.1%}"
            for level, confidence in sorted(self.confidence_by_level.items(),
                                            reverse=True)
        )
        return (
            f"[{self.scheme_name}] mode {self.mode_value:.3g} -> "
            f"SIL {self.mode_level}; mean {self.mean_value:.3g} -> "
            f"SIL {self.mean_level}; one-sided confidence: {conf}; granted at "
            f">={self.required_confidence:.0%}: SIL {self.granted_level}"
        )


def assess(
    dist: JudgementDistribution,
    scheme: BandScheme = LOW_DEMAND,
    required_confidence: float = 0.70,
) -> SilAssessment:
    """Full assessment of a judgement against a band scheme.

    The default 70 % required confidence mirrors IEC 61508 Part 2's
    clauses 7.4.7.4 / 7.4.7.9 (see :mod:`repro.standards.iec61508`).
    """
    confidence_by_level = {
        band.level: band.confidence_better(dist) for band in scheme
    }
    return SilAssessment(
        scheme_name=scheme.name,
        mode_value=dist.mode(),
        mean_value=dist.mean(),
        mode_level=classify_by_mode(dist, scheme),
        mean_level=classify_by_mean(dist, scheme),
        confidence_by_level=confidence_by_level,
        granted_level=classify_by_confidence(dist, required_confidence, scheme),
        required_confidence=required_confidence,
    )
