"""repro — quantitative confidence in dependability cases.

A production-oriented reproduction of Bloomfield, Littlewood & Wright,
*Confidence: its role in dependability cases for risk assessment*
(DSN 2007).  The library treats an assessor's confidence in a
dependability claim as a first-class, quantified object:

* judgement distributions over pfds / failure rates
  (:mod:`repro.distributions`), including the paper's log-normal
  (mode, spread) model and the worst-case layouts of its Section 3.4;
* SIL bands, classification and claim discounting (:mod:`repro.sil`);
* the confidence calculus — claims, confidence/mean trade-offs, the
  conservative ``x + y - xy`` bound, ACARP, case assembly
  (:mod:`repro.core`);
* multi-legged arguments, quantified whole-case graphs and the compiled
  case engine over an exact discrete Bayesian-network engine
  (:mod:`repro.arguments`, :mod:`repro.bbn`);
* Bayesian updating from testing and operating experience, tail
  cut-offs, and the Bishop-Bloomfield conservative growth bound
  (:mod:`repro.update`);
* expert elicitation, opinion pooling and the four-phase Delphi panel
  simulation (:mod:`repro.elicitation`, :mod:`repro.experiment`);
* risk models and ALARP/ACARP decision support (:mod:`repro.risk`);
* standards tables (:mod:`repro.standards`);
* a batched scenario-sweep engine with vectorised kernels, a streaming
  executor and a result cache (:mod:`repro.engine`), all compiled
  artefacts memoised through one unified cache
  (:mod:`repro.compilecache`);
* built-in observability — tracing spans, a metrics registry and
  profiling summaries across the whole plan/compile/execute stack,
  off by default at ~zero cost (:mod:`repro.telemetry`).

Quickstart::

    from repro import LogNormalJudgement, assess

    judgement = LogNormalJudgement.from_mode_sigma(mode=0.003, sigma=0.9)
    print(assess(judgement).summary())
"""

from . import compilecache, telemetry
from .arguments import CompiledCase, QuantifiedCase, compile_case, load_case
from .core import (
    AcarpTarget,
    ConfidenceProfile,
    DependabilityCase,
    PfdBoundClaim,
    SilClaim,
    SinglePointBelief,
    design_for_claim,
    required_confidence,
    worst_case_failure_probability,
)
from .distributions import (
    BetaJudgement,
    GammaJudgement,
    JudgementDistribution,
    LogNormalJudgement,
    TwoPointWorstCase,
)
from .engine import ResultCache, ResultSet, ScenarioSpec, SweepSpec, run_sweep
from .sil import LOW_DEMAND, HIGH_DEMAND, assess
from .update import DemandEvidence, confidence_growth, survival_update

__version__ = "1.0.0"

__all__ = [
    "CompiledCase",
    "QuantifiedCase",
    "compile_case",
    "load_case",
    "AcarpTarget",
    "ConfidenceProfile",
    "DependabilityCase",
    "PfdBoundClaim",
    "SilClaim",
    "SinglePointBelief",
    "design_for_claim",
    "required_confidence",
    "worst_case_failure_probability",
    "BetaJudgement",
    "GammaJudgement",
    "JudgementDistribution",
    "LogNormalJudgement",
    "TwoPointWorstCase",
    "ResultCache",
    "ResultSet",
    "ScenarioSpec",
    "SweepSpec",
    "run_sweep",
    "LOW_DEMAND",
    "HIGH_DEMAND",
    "assess",
    "DemandEvidence",
    "confidence_growth",
    "survival_update",
    "__version__",
]
