"""Tile store reader: slice queries without re-running anything.

:class:`TileStore` opens a finished store directory and answers
"confidence vs sigma at fixed demands"-style questions straight from
the tiles: :meth:`~TileStore.slice` fixes any subset of axes to exact
grid values, intersects the fixed coordinates against the tile layout,
loads only the intersecting blobs, and assembles output arrays shaped
to the remaining axes.  No :class:`~repro.engine.plan.ExecutionPlan`
chunk is ever executed — the P13 gate verifies the engine's chunk
counter stays flat across a query.

Decoded blobs are memoised in the ``"store.tiles"`` compile-cache
region keyed by their content hash, so repeated queries against the
same store (a plotting session, a service endpoint) hit memory, not
disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..compilecache import region
from ..errors import DomainError
from ..telemetry import metrics, tracer
from .format import TILES_DIR, decode_blob, read_manifest, tile_dirname

__all__ = ["TileStore", "StoreSlice"]

_M_TILES_READ = metrics.counter("store.tiles_read")
_M_BYTES_READ = metrics.counter("store.bytes_read")


@dataclass
class StoreSlice:
    """One slice query's result: remaining axes plus column arrays."""

    axes: List[Tuple[str, List[Any]]]
    fixed: Dict[str, Any]
    data: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(values) for _name, values in self.axes)

    @property
    def columns(self) -> List[str]:
        return list(self.data)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.data[name]
        except KeyError:
            raise DomainError(
                f"slice has no column {name!r}; available: "
                f"{sorted(self.data)}"
            ) from None

    def records(self) -> Iterator[Dict[str, Any]]:
        """Rows (params + values) in scenario order, for table output."""
        names = [name for name, _values in self.axes]
        grids = [values for _name, values in self.axes]
        flat = {name: arr.reshape(-1) for name, arr in self.data.items()}
        n = int(np.prod(self.shape)) if self.shape else 1
        for i in range(n):
            row: Dict[str, Any] = dict(self.fixed)
            remainder = i
            for name, values in zip(names, grids):
                stride = 1
                for later in grids[names.index(name) + 1:]:
                    stride *= len(later)
                row[name] = values[(remainder // stride) % len(values)]
            for name, arr in flat.items():
                row[name] = arr[i].item()
            yield row


class TileStore:
    """Read-only view over a finished tile store directory."""

    def __init__(self, path: str, manifest: Dict[str, Any]):
        self._path = str(path)
        self._manifest = manifest
        self._axes: List[Tuple[str, List[Any]]] = [
            (name, list(values)) for name, values in manifest["axes"]
        ]
        self._columns: Dict[str, str] = {
            meta["name"]: meta["dtype"] for meta in manifest["columns"]
        }
        self._layout = manifest["layout"]
        self._tiles: List[Dict[str, Any]] = manifest["tiles"]
        self._cache = region("store.tiles", maxsize=256)

    @classmethod
    def open(cls, path: str) -> "TileStore":
        """Open ``path``; raises :class:`DomainError` if it is not a
        complete store (interrupted runs leave no manifest)."""
        return cls(path, read_manifest(path))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> str:
        return self._path

    @property
    def axes(self) -> List[Tuple[str, List[Any]]]:
        return [(name, list(values)) for name, values in self._axes]

    @property
    def axis_names(self) -> List[str]:
        return [name for name, _values in self._axes]

    @property
    def columns(self) -> Dict[str, str]:
        """Column name -> promoted dtype string."""
        return dict(self._columns)

    @property
    def n_scenarios(self) -> int:
        return self._manifest["n_scenarios"]

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        return tuple(self._layout["grid_shape"])

    @property
    def tile_shape(self) -> Tuple[int, ...]:
        return tuple(self._layout["tile_shape"])

    @property
    def n_tiles(self) -> int:
        return len(self._tiles)

    @property
    def plan_fingerprint(self) -> str:
        return self._manifest["plan_fingerprint"]

    @property
    def store_fingerprint(self) -> str:
        return self._manifest["store_fingerprint"]

    @property
    def pipeline(self) -> str:
        return self._manifest["pipeline"]

    @property
    def manifest(self) -> Dict[str, Any]:
        return self._manifest

    def stats(self) -> Dict[str, Any]:
        """Aggregate store statistics (what the CLI ``store stats`` prints)."""
        per_column: Dict[str, int] = {name: 0 for name in self._columns}
        total = 0
        for record in self._tiles:
            for name, col in record["columns"].items():
                per_column[name] = per_column.get(name, 0) + col["bytes"]
                total += col["bytes"]
        return {
            "path": self._path,
            "pipeline": self.pipeline,
            "n_scenarios": self.n_scenarios,
            "n_tiles": self.n_tiles,
            "grid_shape": list(self.grid_shape),
            "tile_shape": list(self.tile_shape),
            "axes": [[name, len(values)] for name, values in self._axes],
            "columns": {
                name: {"dtype": dtype, "bytes": per_column.get(name, 0)}
                for name, dtype in self._columns.items()
            },
            "bytes": total,
            "plan_fingerprint": self.plan_fingerprint,
            "store_fingerprint": self.store_fingerprint,
        }

    # ------------------------------------------------------------------ #
    # Blob access
    # ------------------------------------------------------------------ #

    def _load(self, record: Dict[str, Any], name: str) -> np.ndarray:
        col = record["columns"][name]
        cached = self._cache.get(col["sha256"])
        if cached is not None:
            return cached
        path = os.path.join(
            self._path, TILES_DIR, tile_dirname(record["index"]),
            col["file"],
        )
        try:
            arr = decode_blob(path)
        except (OSError, ValueError) as exc:
            raise DomainError(
                f"tile blob {path!r} unreadable ({exc}); the store may "
                f"have been interrupted — re-run the sweep"
            ) from None
        _M_TILES_READ.add()
        _M_BYTES_READ.add(col["bytes"])
        self._cache.put(col["sha256"], arr)
        return arr

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _axis_index(self, name: str) -> int:
        for i, (axis, _values) in enumerate(self._axes):
            if axis == name:
                return i
        raise DomainError(
            f"store has no axis {name!r}; axes: {self.axis_names}"
        )

    def _value_index(self, axis: int, value: Any) -> int:
        name, values = self._axes[axis]
        for i, candidate in enumerate(values):
            if candidate == value or (
                isinstance(candidate, (int, float))
                and isinstance(value, (int, float))
                and float(candidate) == float(value)
            ):
                return i
        preview = values if len(values) <= 8 else (
            values[:8] + ["..."]
        )
        raise DomainError(
            f"axis {name!r} has no value {value!r}; values: {preview}"
        )

    def slice(
        self,
        columns: Optional[Sequence[str]] = None,
        **fixed: Any,
    ) -> StoreSlice:
        """Columns over the sub-grid where each ``fixed`` axis equals
        the given grid value; remaining axes keep store order."""
        if columns is None:
            names = list(self._columns)
        else:
            names = list(columns)
            unknown = sorted(set(names) - set(self._columns))
            if unknown:
                raise DomainError(
                    f"unknown columns {unknown}; store has "
                    f"{sorted(self._columns)}"
                )
        if fixed and not self._axes:
            raise DomainError(
                "this store has no parameter axes to fix (explicit "
                "scenario sweep); call slice() without axis arguments"
            )
        pinned: Dict[int, int] = {}
        for axis_name, value in fixed.items():
            axis = self._axis_index(axis_name)
            pinned[axis] = self._value_index(axis, value)
        free = [i for i in range(len(self._axes)) if i not in pinned]
        out_axes = [
            (self._axes[i][0], list(self._axes[i][1])) for i in free
        ]
        out_shape = tuple(len(self._axes[i][1]) for i in free)
        if not self._axes:
            out_shape = (self.n_scenarios,)
        data = {
            name: np.empty(out_shape, dtype=np.dtype(self._columns[name]))
            for name in names
        }
        with tracer.span("store.slice") as span:
            hits = 0
            for record in self._tiles:
                offsets = record["offsets"] or [record["start"]]
                shape = record["shape"] or [record["rows"]]
                skip = False
                for axis, value_index in pinned.items():
                    if not (offsets[axis] <= value_index
                            < offsets[axis] + shape[axis]):
                        skip = True
                        break
                if skip:
                    continue
                hits += 1
                indexer = tuple(
                    (pinned[axis] - offsets[axis]) if axis in pinned
                    else slice(None)
                    for axis in range(len(offsets))
                )
                placer = tuple(
                    slice(offsets[i], offsets[i] + shape[i]) for i in free
                ) if self._axes else (
                    slice(record["start"], record["stop"]),
                )
                for name in names:
                    arr = self._load(record, name).reshape(shape)
                    data[name][placer] = arr[indexer]
            span.set(tiles=hits, columns=len(names))
        return StoreSlice(
            axes=out_axes,
            fixed=dict(fixed),
            data=data,
        )

    def column(self, name: str) -> np.ndarray:
        """One column over the whole grid (shaped to the grid)."""
        return self.slice(columns=[name]).data[name]
