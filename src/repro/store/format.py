"""On-disk format of a tile store: blobs, filenames, manifest.

Layout on disk::

    store/
      manifest.json          # plan identity + per-tile records
      tiles/
        000000/
          confidence.npy     # one .npy blob per value column per tile
          p_top.npy
        000001/
          ...

Everything here is **deterministic**: column files are named by a pure
function of the column name, arrays are normalised to a fixed dtype
menu before encoding, and the manifest is dumped with sorted keys and
no timestamps.  That is a correctness requirement, not tidiness — the
delta executor promises that an incremental store is *bit-identical*
to a from-scratch run, so every byte must be a function of the sweep
alone.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..errors import DomainError

__all__ = [
    "MANIFEST_NAME", "TILES_DIR", "STORE_FORMAT", "STORE_VERSION",
    "column_filename", "column_array", "encode_blob", "decode_blob",
    "tile_dirname", "write_atomic", "read_manifest", "write_manifest",
]

MANIFEST_NAME = "manifest.json"
TILES_DIR = "tiles"
STORE_FORMAT = "repro-tile-store"
STORE_VERSION = 1

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def tile_dirname(index: int) -> str:
    """Zero-padded per-tile directory name (sorts in tile order)."""
    return f"{index:06d}"


def column_filename(name: str) -> str:
    """Filesystem-safe blob name for a column (deterministic)."""
    safe = _SAFE.sub("_", name) or "column"
    return f"{safe}.npy"


def column_filenames(names: Sequence[str]) -> Dict[str, str]:
    """Map column names to unique blob filenames.

    Collisions after sanitisation (``"a.b"`` vs ``"a_b"``) are broken
    by a numeric suffix assigned in sorted-name order, so the mapping
    is a pure function of the column *set*, independent of the order
    tiles were written in.
    """
    mapping: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for name in sorted(names):
        base = column_filename(name)
        count = used.get(base, 0)
        used[base] = count + 1
        if count:
            stem, ext = os.path.splitext(base)
            base = f"{stem}__{count + 1}{ext}"
        mapping[name] = base
    return mapping


def column_array(name: str, values: List[Any]) -> np.ndarray:
    """Normalise one tile's column values to a storable 1-D array.

    The dtype menu is deliberately small and **decided per tile,
    independently of any other tile**: bool, int64, float64, or
    fixed-width unicode.  (Delta runs write tiles in a different order
    than full runs, so any "first tile wins" dtype rule would break
    bit-identity.)  ``None`` becomes NaN; values that fit none of the
    menu — nested lists, dicts, mixed text/number columns — are
    rejected with a pointer at the row sinks, which keep arbitrary
    JSON-able values.
    """
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError):
        arr = np.asarray(values, dtype=object)
    if arr.dtype != object and arr.ndim == 1:
        kind = arr.dtype.kind
        if kind == "b":
            return arr
        if kind in "iu":
            return arr.astype(np.int64)
        if kind == "f":
            return arr.astype(np.float64)
        if kind == "U":
            return arr
    # Mixed numeric / None columns: coerce through float64.
    try:
        return np.asarray(
            [np.nan if v is None else float(v) for v in values],
            dtype=np.float64,
        )
    except (TypeError, ValueError):
        raise DomainError(
            f"column {name!r} holds values that do not fit a columnar "
            f"dtype (bool/int64/float64/str); use a JSONL or CSV sink "
            f"for free-form rows"
        ) from None


def encode_blob(arr: np.ndarray) -> Tuple[bytes, str]:
    """``.npy`` bytes plus their sha256 (deterministic for equal arrays)."""
    buf = io.BytesIO()
    np.save(buf, arr, allow_pickle=False)
    data = buf.getvalue()
    return data, hashlib.sha256(data).hexdigest()


def decode_blob(path: str) -> np.ndarray:
    arr = np.load(path, allow_pickle=False)
    arr.flags.writeable = False
    return arr


def _fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(path: str, data: bytes, durable: bool = False) -> None:
    """Write ``data`` to ``path`` via rename, never exposing torn files.

    ``durable=True`` additionally fsyncs the parent directory after the
    rename, making the *rename itself* survive power loss — used for
    the manifest, the store's single commit point (per-blob directory
    syncs would cost one per column per tile for no extra guarantee:
    blobs without a manifest are invisible anyway).
    """
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    if durable:
        _fsync_dir(os.path.dirname(os.path.abspath(path)) or ".")


def manifest_path(store_path: str) -> str:
    return os.path.join(store_path, MANIFEST_NAME)


def read_manifest(store_path: str) -> Dict[str, Any]:
    """Load and sanity-check a store manifest."""
    path = manifest_path(store_path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise DomainError(
            f"{store_path!r} is not a tile store (no {MANIFEST_NAME})"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise DomainError(
            f"unreadable tile store manifest {path!r}: {exc}"
        ) from None
    if not isinstance(manifest, dict) or (
        manifest.get("format") != STORE_FORMAT
    ):
        raise DomainError(
            f"{path!r} is not a {STORE_FORMAT} manifest"
        )
    version = manifest.get("version")
    if version != STORE_VERSION:
        raise DomainError(
            f"tile store {store_path!r} has manifest version "
            f"{version!r}; this build reads version {STORE_VERSION}"
        )
    return manifest


def write_manifest(store_path: str, manifest: Dict[str, Any]) -> None:
    """Dump the manifest deterministically (sorted keys, no clock)."""
    blob = json.dumps(manifest, sort_keys=True, indent=1)
    write_atomic(manifest_path(store_path), (blob + "\n").encode("utf-8"),
                 durable=True)
