"""Tile store writer: the ``TileWriter`` core and the ``TileSink``.

:class:`TileWriter` owns the on-disk store during one run — it encodes
tiles to ``.npy`` blobs, accounts bytes, and finalises the manifest
(pruning any blobs a previous store version left behind).  Both entry
points share it:

* :class:`TileSink` adapts it to the streaming executor's
  :class:`~repro.engine.sinks.ResultSink` protocol, cutting tiles off
  the ordered row stream with a bounded buffer.  The coordinator opens
  sinks with the *whole* plan (shards spill, the coordinator merges in
  order), so sharded sweeps write tile stores unchanged.
* the delta executor (:mod:`repro.store.delta`) drives a writer
  directly, mixing freshly executed tiles with blobs reused from the
  previous store generation.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import DomainError
from ..engine.plan import ExecutionPlan, PlanShard
from ..engine.results import ScenarioResult
from ..engine.sinks import ResultSink
from ..telemetry import metrics, tracer
from .format import (
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_VERSION,
    TILES_DIR,
    column_array,
    column_filenames,
    encode_blob,
    tile_dirname,
    write_atomic,
    write_manifest,
)
from .layout import Tile, TileLayout

__all__ = ["TileSink", "TileWriter"]

_M_TILES_WRITTEN = metrics.counter("store.tiles_written")
_M_TILES_SKIPPED = metrics.counter("store.tiles_skipped")
_M_TILES_MOVED = metrics.counter("store.tiles_moved")
_M_ROWS_WRITTEN = metrics.counter("store.rows_written")
_M_BYTES_WRITTEN = metrics.counter("store.bytes_written")
_M_BYTES_REUSED = metrics.counter("store.bytes_reused")


class TileWriter:
    """Writes one store generation: tiles in, manifest out."""

    def __init__(self, path: str, layout: TileLayout):
        self._path = str(path)
        self._layout = layout
        self._plan = layout.plan
        self._columns: Optional[List[str]] = None
        self._files: Dict[str, str] = {}
        self._records: Dict[int, Dict[str, Any]] = {}
        self.tiles_written = 0
        self.tiles_skipped = 0
        self.tiles_moved = 0
        self.rows_written = 0
        self.bytes_written = 0
        self.bytes_reused = 0
        os.makedirs(os.path.join(self._path, TILES_DIR), exist_ok=True)

    @property
    def path(self) -> str:
        return self._path

    @property
    def layout(self) -> TileLayout:
        return self._layout

    def tile_dir(self, index: int) -> str:
        return os.path.join(self._path, TILES_DIR, tile_dirname(index))

    # ------------------------------------------------------------------ #
    # Column bookkeeping
    # ------------------------------------------------------------------ #

    def _bind_columns(self, names: Sequence[str]) -> None:
        ordered = sorted(names)
        if self._columns is None:
            self._columns = ordered
            self._files = column_filenames(ordered)
        elif ordered != self._columns:
            raise DomainError(
                f"tile store columns changed mid-run: expected "
                f"{self._columns}, got {ordered}; all tiles of a store "
                f"must share one column set (delete the store directory "
                f"if the pipeline's outputs changed)"
            )

    # ------------------------------------------------------------------ #
    # Tile ingestion
    # ------------------------------------------------------------------ #

    def write_tile(
        self,
        tile: Tile,
        rows: Sequence[ScenarioResult],
        fingerprint: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Encode and persist one executed tile; returns its record."""
        if len(rows) != tile.n_scenarios:
            raise DomainError(
                f"tile {tile.index} expects {tile.n_scenarios} rows, "
                f"got {len(rows)}"
            )
        if fingerprint is None:
            fingerprint = self._layout.fingerprint(tile)
        self._bind_columns(list(rows[0].values))
        assert self._columns is not None
        tile_dir = self.tile_dir(tile.index)
        os.makedirs(tile_dir, exist_ok=True)
        columns: Dict[str, Any] = {}
        with tracer.span("store.write_tile") as span:
            for name in self._columns:
                try:
                    values = [row.values[name] for row in rows]
                except KeyError:
                    raise DomainError(
                        f"tile {tile.index} row is missing column "
                        f"{name!r}; all rows of a store must share one "
                        f"column set"
                    ) from None
                arr = column_array(name, values)
                if not self._layout.linear:
                    arr = arr.reshape(tile.shape)
                data, sha = encode_blob(arr)
                filename = self._files[name]
                write_atomic(os.path.join(tile_dir, filename), data)
                columns[name] = {
                    "file": filename,
                    "dtype": str(arr.dtype),
                    "bytes": len(data),
                    "sha256": sha,
                }
                self.bytes_written += len(data)
                _M_BYTES_WRITTEN.add(len(data))
            span.set(tile=tile.index, rows=len(rows))
        record = self._record(tile, fingerprint, columns)
        self._records[tile.index] = record
        self.tiles_written += 1
        self.rows_written += len(rows)
        _M_TILES_WRITTEN.add()
        _M_ROWS_WRITTEN.add(len(rows))
        return record

    def reuse_tile(
        self,
        tile: Tile,
        fingerprint: str,
        old_record: Dict[str, Any],
        source_dir: str,
        staged: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """Adopt a previous generation's blobs for ``tile``.

        When the old blobs already sit in this tile's directory the
        adoption is free (``skipped``); otherwise they are renamed into
        place (``moved`` — the fingerprint matched at a different tile
        index, e.g. after an axis grew).  Moves must pass ``staged``:
        per-column paths of temp files the caller copied and
        content-verified *before* any destination write (a move's
        destination directory can be a later move's source, and staging
        through files keeps peak memory independent of how many tiles
        move).  Each staged file is consumed (renamed away) on use.
        Returns the new record, or raises :class:`DomainError` if a
        blob is missing or its size disagrees with the old record —
        callers treat that as "execute the tile instead".
        """
        self._bind_columns(list(old_record["columns"]))
        assert self._columns is not None
        tile_dir = self.tile_dir(tile.index)
        in_place = os.path.realpath(source_dir) == os.path.realpath(tile_dir)
        columns: Dict[str, Any] = {}
        reused = 0
        for name in self._columns:
            old_col = old_record["columns"][name]
            filename = self._files[name]
            if in_place:
                if old_col["file"] != filename:
                    raise DomainError(
                        f"tile {tile.index} blob naming changed "
                        f"({old_col['file']!r} -> {filename!r}); "
                        f"re-executing"
                    )
                src = os.path.join(source_dir, old_col["file"])
                try:
                    size = os.path.getsize(src)
                except OSError:
                    raise DomainError(
                        f"tile blob {src!r} disappeared; re-executing"
                    ) from None
                if size != old_col["bytes"]:
                    raise DomainError(
                        f"tile blob {src!r} is {size} bytes, manifest "
                        f"recorded {old_col['bytes']}; re-executing"
                    )
            else:
                src = (staged or {}).get(name)
                try:
                    size = -1 if src is None else os.path.getsize(src)
                except OSError:
                    size = -1
                if size != old_col["bytes"]:
                    raise DomainError(
                        f"tile {tile.index} move is missing verified "
                        f"staged bytes for column {name!r}; re-executing"
                    )
                os.makedirs(tile_dir, exist_ok=True)
                os.replace(src, os.path.join(tile_dir, filename))
            columns[name] = {
                "file": filename,
                "dtype": old_col["dtype"],
                "bytes": old_col["bytes"],
                "sha256": old_col["sha256"],
            }
            reused += old_col["bytes"]
        record = self._record(tile, fingerprint, columns)
        self._records[tile.index] = record
        self.bytes_reused += reused
        _M_BYTES_REUSED.add(reused)
        if in_place:
            self.tiles_skipped += 1
            _M_TILES_SKIPPED.add()
        else:
            self.tiles_moved += 1
            _M_TILES_MOVED.add()
        return record

    def _record(
        self, tile: Tile, fingerprint: str, columns: Dict[str, Any]
    ) -> Dict[str, Any]:
        return {
            "index": tile.index,
            "offsets": list(tile.offsets),
            "shape": list(tile.shape),
            "start": tile.start,
            "stop": tile.stop,
            "rows": tile.n_scenarios,
            "fingerprint": fingerprint,
            "columns": columns,
        }

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #

    def finalise(self) -> Dict[str, Any]:
        """Write the manifest and prune unreferenced blobs.

        Requires every tile of the layout to have been written or
        reused; a partial store never gets a manifest (readers refuse
        directories without one, so torn runs fail loudly).
        """
        layout = self._layout
        missing = [
            index for index in range(layout.n_tiles)
            if index not in self._records
        ]
        if missing:
            raise DomainError(
                f"store at {self._path!r} is missing "
                f"{len(missing)}/{layout.n_tiles} tiles "
                f"(first: {missing[:5]}); refusing to write a manifest"
            )
        plan = self._plan
        records = [self._records[index] for index in range(layout.n_tiles)]
        columns = self._columns or []
        # Global column dtypes: promote across the per-tile dtypes so
        # readers can allocate one output array per column.
        column_meta = []
        for name in columns:
            dtypes = {record["columns"][name]["dtype"]
                      for record in records}
            try:
                promoted = (
                    str(np.result_type(*sorted(dtypes))) if dtypes
                    else "float64"
                )
            except TypeError:
                raise DomainError(
                    f"column {name!r} mixes incompatible dtypes across "
                    f"tiles ({sorted(dtypes)}); use a JSONL or CSV sink "
                    f"for free-form rows"
                ) from None
            column_meta.append({
                "name": name,
                "dtype": promoted,
                "file": self._files[name],
            })
        store_fp = hashlib.sha256(
            "".join(record["fingerprint"] for record in records)
            .encode("utf-8")
        ).hexdigest()
        manifest: Dict[str, Any] = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "pipeline": plan.pipeline_name,
            "base": dict(plan._base),
            "axes": [
                [name, list(values)] for name, values in plan.axis_items
            ],
            "master_seed": plan.master_seed,
            "dtype": plan.dtype,
            "n_scenarios": plan.n_scenarios,
            "plan_fingerprint": plan.fingerprint(),
            "store_fingerprint": store_fp,
            "layout": layout.describe(),
            "columns": column_meta,
            "tiles": records,
        }
        with tracer.span("store.finalise") as span:
            write_manifest(self._path, manifest)
            self._prune(records)
            span.set(tiles=len(records), bytes=self.bytes_written)
        return manifest

    def _prune(self, records: List[Dict[str, Any]]) -> None:
        """Remove blobs/dirs no record references (old generations)."""
        expected: Dict[str, set] = {}
        for record in records:
            dirname = tile_dirname(record["index"])
            expected.setdefault(dirname, set()).update(
                col["file"] for col in record["columns"].values()
            )
        tiles_root = os.path.join(self._path, TILES_DIR)
        try:
            entries = sorted(os.listdir(tiles_root))
        except OSError:
            return
        for entry in entries:
            entry_path = os.path.join(tiles_root, entry)
            if entry not in expected:
                shutil.rmtree(entry_path, ignore_errors=True)
                continue
            keep = expected[entry]
            try:
                files = os.listdir(entry_path)
            except OSError:
                continue
            for filename in files:
                if filename not in keep:
                    try:
                        os.remove(os.path.join(entry_path, filename))
                    except OSError:
                        pass


class TileSink(ResultSink):
    """A :class:`~repro.engine.sinks.ResultSink` writing a tile store.

    ``path`` is the store directory (created if needed; a previous
    manifest there is replaced only when this run completes).  Tile
    granularity comes from ``tile_scenarios`` (a target scenario count
    per tile, default ``16384``) or an explicit ``tile_shape`` (per-axis
    block sizes in pivot form — see :mod:`repro.store.layout`).

    Rows arrive in scenario order (the executor and the coordinator
    both guarantee it), so the sink holds at most one tile plus one
    chunk of rows in memory before flushing blobs to disk.  The
    manifest is written by :meth:`close` only after the final tile —
    an interrupted run leaves blobs but no manifest, which readers and
    delta runs treat as "no store here".
    """

    def __init__(
        self,
        path: str,
        tile_scenarios: Optional[int] = None,
        tile_shape: Optional[Union[Sequence[int], Dict[str, int]]] = None,
    ):
        self._path = str(path)
        self._tile_scenarios = tile_scenarios
        self._tile_shape = tile_shape
        self._writer: Optional[TileWriter] = None
        self._layout: Optional[TileLayout] = None
        self._buffer: List[ScenarioResult] = []
        self._buffer_start = 0
        self._next_tile = 0
        self._manifest: Optional[Dict[str, Any]] = None

    @property
    def path(self) -> str:
        return self._path

    @property
    def tile_scenarios(self) -> Optional[int]:
        return self._tile_scenarios

    @property
    def tile_shape(self):
        return self._tile_shape

    @property
    def writer(self) -> Optional[TileWriter]:
        return self._writer

    @property
    def manifest(self) -> Optional[Dict[str, Any]]:
        """The manifest written by :meth:`close` (None if incomplete)."""
        return self._manifest

    def open(self, plan: ExecutionPlan) -> None:
        if isinstance(plan, PlanShard):
            raise DomainError(
                "TileSink needs the whole plan, not a shard; sharded "
                "runs already open sinks with the parent plan via the "
                "coordinator (run_sweep_streaming(shards=...))"
            )
        self._layout = TileLayout(
            plan,
            tile_scenarios=self._tile_scenarios,
            tile_shape=self._tile_shape,
        )
        self._writer = TileWriter(self._path, self._layout)
        self._buffer = []
        self._buffer_start = 0
        self._next_tile = 0
        self._manifest = None
        # A stale manifest must not survive into a half-written store.
        try:
            os.remove(os.path.join(self._path, MANIFEST_NAME))
        except OSError:
            pass

    def write(self, results: Sequence[ScenarioResult]) -> None:
        if self._writer is None or self._layout is None:
            raise DomainError("TileSink.write() before open()")
        self._buffer.extend(results)
        end = self._buffer_start + len(self._buffer)
        while self._next_tile < self._layout.n_tiles:
            tile = self._layout.tile(self._next_tile)
            if tile.stop > end:
                break
            lo = tile.start - self._buffer_start
            hi = tile.stop - self._buffer_start
            self._writer.write_tile(tile, self._buffer[lo:hi])
            del self._buffer[:hi]
            self._buffer_start = tile.stop
            self._next_tile += 1

    def close(self) -> None:
        if self._writer is None or self._layout is None:
            return
        if self._next_tile == self._layout.n_tiles and not self._buffer:
            self._manifest = self._writer.finalise()

    def adopt(self, writer: TileWriter, manifest: Dict[str, Any]) -> None:
        """Adopt a finished store written by an external driver.

        The delta executor drives a :class:`TileWriter` directly (it
        never routes rows through :meth:`write`); after finalising it
        hands the writer and manifest back here so :attr:`writer` and
        :attr:`manifest` report the completed store on the delta path
        exactly as they do after a full :meth:`open`/:meth:`close` run.
        """
        self._writer = writer
        self._layout = writer.layout
        self._buffer = []
        self._buffer_start = writer.layout.plan.n_scenarios
        self._next_tile = writer.layout.n_tiles
        self._manifest = manifest
