"""repro.store: a tiled columnar result store plus delta-sweeps.

Sweep output lands in parameter-plane-aligned NumPy tiles — one
``.npy`` blob per value column per tile, per-column dtype, a JSON
manifest carrying the plan fingerprint and per-tile content hashes
(:mod:`~repro.store.format`, :mod:`~repro.store.layout`).  Write one
with :class:`TileSink` (an ordinary streaming/coordinator sink), read
it back with :class:`TileStore` slice queries, and re-run sweeps
incrementally with ``run_sweep_streaming(delta=True)`` /
:func:`run_sweep_delta` — unchanged tiles are adopted by content
fingerprint instead of recomputed, and the result is bit-identical to
a from-scratch run.
"""

from .delta import run_sweep_delta
from .layout import DEFAULT_TILE_SCENARIOS, Tile, TileLayout, default_tile_shape
from .reader import StoreSlice, TileStore
from .sink import TileSink, TileWriter

__all__ = [
    "DEFAULT_TILE_SCENARIOS",
    "StoreSlice",
    "Tile",
    "TileLayout",
    "TileSink",
    "TileStore",
    "TileWriter",
    "default_tile_shape",
    "run_sweep_delta",
]
