"""Tile layout: axis-aligned blocks of the parameter plane.

A :class:`TileLayout` partitions a plan's scenario grid into
**tiles** — axis-aligned hyper-rectangles chosen so that every tile is
*also* one contiguous global scenario range.  That double alignment is
what makes the store cheap in both directions:

* **writing** — the streaming executor emits rows in scenario order, so
  a sink can cut tiles off the stream with a bounded buffer and no
  scatter;
* **reading** — a slice query ("confidence vs sigma at fixed demands")
  intersects the fixed axes against tile offsets and touches only the
  blobs it needs.

The contiguity constraint pins the block shape to a **pivot** form:
there is an axis ``p`` such that earlier axes contribute one value per
tile, axis ``p`` contributes a run of values, and later axes are taken
whole.  (Row-major order then makes each tile the scenario range
``[start, start + prod(shape))``.)  :func:`default_tile_shape` picks
the pivot from a target scenario count per tile — the same
"tile_size" knob the datacube chunking configs expose.

Each tile knows its :meth:`~TileLayout.fingerprint` — the plan's
:meth:`~repro.engine.plan.ExecutionPlan.region_fingerprint` over the
tile's axis windows — which is what delta-sweeps diff to decide
whether a tile's bytes can be reused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import DomainError
from ..engine.plan import ExecutionPlan, PlanShard

__all__ = ["Tile", "TileLayout", "default_tile_shape",
           "DEFAULT_TILE_SCENARIOS"]

#: Default target scenarios per tile.  Matches the chunk sizes the
#: executor favours for million-scenario sweeps: large enough that the
#: per-tile manifest/IO overhead is negligible, small enough that a
#: one-axis edit invalidates a small fraction of the store.
DEFAULT_TILE_SCENARIOS = 16384


@dataclass(frozen=True)
class Tile:
    """One tile: block coordinates plus its scenario range."""

    index: int
    offsets: Tuple[int, ...]
    shape: Tuple[int, ...]
    start: int
    stop: int

    @property
    def n_scenarios(self) -> int:
        return self.stop - self.start


def default_tile_shape(
    grid_shape: Sequence[int], tile_scenarios: int
) -> Tuple[int, ...]:
    """The pivot-form block shape closest to ``tile_scenarios`` per tile.

    Chooses the smallest pivot axis whose suffix (the product of later
    axis sizes) fits inside the target, then sizes the pivot's run to
    fill the remainder.  Examples (target 16384): ``(100, 10000)`` →
    ``(1, 10000)``; ``(4, 8, 512)`` → ``(1, 4, 512)``.
    """
    if tile_scenarios < 1:
        raise DomainError(
            f"tile_scenarios must be positive, got {tile_scenarios}"
        )
    shape = tuple(int(s) for s in grid_shape)
    if not shape:
        return ()
    n = len(shape)
    suffix = [1] * (n + 1)
    for k in reversed(range(n)):
        suffix[k] = shape[k] * suffix[k + 1]
    pivot = 0
    while suffix[pivot + 1] > tile_scenarios:
        pivot += 1
    blocks = [1] * n
    blocks[pivot] = max(
        1, min(shape[pivot], tile_scenarios // max(1, suffix[pivot + 1]))
    )
    for k in range(pivot + 1, n):
        blocks[k] = shape[k]
    return tuple(blocks)


def _validate_contiguous(
    grid_shape: Sequence[int], tile_shape: Sequence[int]
) -> None:
    """Reject block shapes whose tiles are not contiguous scenario runs."""
    n = len(grid_shape)
    if len(tile_shape) != n:
        raise DomainError(
            f"tile shape {tuple(tile_shape)} has {len(tile_shape)} axes, "
            f"grid has {n}"
        )
    for size, block in zip(grid_shape, tile_shape):
        if not 1 <= block <= size:
            raise DomainError(
                f"tile shape {tuple(tile_shape)} does not fit grid "
                f"{tuple(grid_shape)}: blocks must satisfy "
                f"1 <= block <= axis size"
            )
    k = 0
    while k < n and tile_shape[k] == 1:
        k += 1
    if k < n:
        k += 1  # the pivot axis may take any run length
    while k < n and tile_shape[k] == grid_shape[k]:
        k += 1
    if k < n:
        raise DomainError(
            f"tile shape {tuple(tile_shape)} is not contiguous in "
            f"scenario order for grid {tuple(grid_shape)}: blocks must "
            f"be 1 on leading axes, then one pivot run, then whole "
            f"trailing axes (e.g. {default_tile_shape(grid_shape, 16384)})"
        )


class TileLayout:
    """The tiling of one plan's scenario space.

    ``linear`` layouts (explicit scenario lists, gridless sweeps) tile
    the flat scenario range; ``grid`` layouts tile the parameter plane
    in pivot form.  Tiles enumerate in row-major block order, which —
    by the contiguity constraint — is also ascending scenario order.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        tile_scenarios: Optional[int] = None,
        tile_shape: Optional[Union[Sequence[int], Dict[str, int]]] = None,
    ):
        if isinstance(plan, PlanShard):
            raise DomainError(
                "tile layouts cover whole plans; pass the parent plan "
                "(the coordinator already opens sinks with it)"
            )
        if tile_scenarios is not None and tile_shape is not None:
            raise DomainError(
                "pass tile_scenarios or tile_shape, not both"
            )
        self._plan = plan
        self._grid_shape = plan.grid_shape
        self._linear = not self._grid_shape
        target = (DEFAULT_TILE_SCENARIOS if tile_scenarios is None
                  else int(tile_scenarios))
        if target < 1:
            raise DomainError(
                f"tile_scenarios must be positive, got {target}"
            )
        if self._linear:
            if tile_shape is not None:
                raise DomainError(
                    "this plan has no grid axes; size tiles with "
                    "tile_scenarios instead of tile_shape"
                )
            self._tile_shape: Tuple[int, ...] = (
                (min(target, plan.n_scenarios),)
                if plan.n_scenarios else (1,)
            )
            self._space: Tuple[int, ...] = (plan.n_scenarios,)
        else:
            if tile_shape is None:
                shape = default_tile_shape(self._grid_shape, target)
            elif isinstance(tile_shape, dict):
                names = plan.axes
                unknown = sorted(set(tile_shape) - set(names))
                if unknown:
                    raise DomainError(
                        f"tile_shape names unknown axes {unknown}; "
                        f"grid axes are {list(names)}"
                    )
                shape = tuple(
                    int(tile_shape.get(name, size))
                    for name, size in zip(names, self._grid_shape)
                )
            else:
                shape = tuple(int(b) for b in tile_shape)
            if plan.n_scenarios:
                _validate_contiguous(self._grid_shape, shape)
            self._tile_shape = shape
            self._space = self._grid_shape
        # Block-grid bookkeeping: how many tiles along each axis, and
        # the row-major strides over blocks and over scenarios.
        self._blocks_per_axis = tuple(
            -(-size // block)
            for size, block in zip(self._space, self._tile_shape)
        )
        n_tiles = 1
        for count in self._blocks_per_axis:
            n_tiles *= count
        self._n_tiles = n_tiles if plan.n_scenarios else 0
        strides: List[int] = []
        place = 1
        for size in reversed(self._space):
            strides.append(place)
            place *= size
        self._scenario_strides = tuple(reversed(strides))
        block_strides: List[int] = []
        place = 1
        for count in reversed(self._blocks_per_axis):
            block_strides.append(place)
            place *= count
        self._block_strides = tuple(reversed(block_strides))

    @property
    def plan(self) -> ExecutionPlan:
        return self._plan

    @property
    def linear(self) -> bool:
        return self._linear

    @property
    def tile_shape(self) -> Tuple[int, ...]:
        return self._tile_shape

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        """The tiled space: the plan's grid, or ``(n_scenarios,)``."""
        return self._space

    @property
    def n_tiles(self) -> int:
        return self._n_tiles

    def tile(self, index: int) -> Tile:
        if not 0 <= index < self._n_tiles:
            raise DomainError(
                f"tile index {index} out of range [0, {self._n_tiles})"
            )
        offsets = []
        shape = []
        start = 0
        for size, block, bstride, sstride in zip(
            self._space, self._tile_shape, self._block_strides,
            self._scenario_strides,
        ):
            coord = (index // bstride) % max(1, -(-size // block))
            offset = coord * block
            extent = min(block, size - offset)
            offsets.append(offset)
            shape.append(extent)
            start += offset * sstride
        stop = start
        n = 1
        for extent in shape:
            n *= extent
        stop = start + n
        return Tile(index, tuple(offsets), tuple(shape), start, stop)

    def tiles(self) -> Iterator[Tile]:
        """Tiles in block order == ascending scenario order."""
        for index in range(self._n_tiles):
            yield self.tile(index)

    def fingerprint(self, tile: Tile) -> str:
        """The plan's region fingerprint of ``tile`` (see
        :meth:`repro.engine.plan.ExecutionPlan.region_fingerprint`)."""
        if self._linear:
            blocks: Tuple[Tuple[int, int], ...] = (
                (tile.start, tile.n_scenarios),
            )
        else:
            blocks = tuple(zip(tile.offsets, tile.shape))
        return self._plan.region_fingerprint(blocks)

    def describe(self) -> Dict[str, Any]:
        """Manifest-facing summary of the layout."""
        return {
            "grid_shape": list(self._space),
            "tile_shape": list(self._tile_shape),
            "n_tiles": self._n_tiles,
            "linear": self._linear,
        }
