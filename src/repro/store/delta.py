"""Delta-sweep execution: only compute the tiles whose inputs changed.

:func:`run_sweep_delta` re-runs a sweep **against an existing tile
store**.  It lowers the sweep, tiles the new plan, and diffs each
tile's content fingerprint (:meth:`ExecutionPlan.region_fingerprint`:
spec + axis windows + seed window + referenced-file content) against
the store's manifest:

* **skipped** — the tile at the same index has the same fingerprint;
  its blobs are adopted with zero I/O beyond a size check;
* **moved** — the fingerprint exists elsewhere in the old store (an
  axis grew or values shifted position); the blobs are staged through
  temp files on the store's filesystem (hash-verified as they stream,
  memory bounded however many tiles move) and renamed into the new
  index;
* **executed** — everything else runs through the ordinary streaming
  machinery (:func:`repro.engine.stream.stream_results`) as an
  explicit-scenario sub-plan carrying the parent's absolute seeds.

Because reused blobs were themselves produced by a run of a
fingerprint-identical region, and executed tiles run the same kernels
on the same scenarios with the same seeds, the finished store is
**bit-identical to a from-scratch run by construction** — the P13 gate
compares the two directories file by file.

Unseeded *non-deterministic* sweeps are rejected: their rows are not a
function of the fingerprint, so "skip what matched" would silently
change results.  Seeded sweeps of any pipeline are fine (the seed
window is part of the fingerprint).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compilecache import compile_seconds
from ..errors import DomainError
from ..telemetry import tracer
from ..engine.cache import ResultCache
from ..engine.plan import Chunk, ExecutionPlan, lower
from ..engine.sinks import ResultSink
from ..engine.stream import (
    ProgressFn,
    _resolve_backend,
    run_sweep_streaming,
    stream_results,
)
from .format import TILES_DIR, manifest_path, read_manifest, tile_dirname
from .layout import Tile, TileLayout
from .sink import TileSink, TileWriter

__all__ = ["run_sweep_delta"]


def _delta_meta(meta: Dict[str, Any], writer: TileWriter,
                n_tiles: int) -> Dict[str, Any]:
    meta["delta"] = True
    meta["tiles_total"] = n_tiles
    meta["tiles_executed"] = writer.tiles_written
    meta["tiles_skipped"] = writer.tiles_skipped
    meta["tiles_moved"] = writer.tiles_moved
    meta["rows_executed"] = writer.rows_written
    meta["bytes_written"] = writer.bytes_written
    meta["bytes_reused"] = writer.bytes_reused
    return meta


#: Staging directory for moved tiles, inside the store (same
#: filesystem, so staged files rename into tile directories atomically).
STAGE_DIR = ".delta-stage"

_COPY_BLOCK = 1 << 20


def _stage_move_sources(
    store_path: str,
    moves: List[Tuple[Tile, str, Dict[str, Any]]],
    stage_dir: str,
) -> Dict[int, Dict[str, str]]:
    """Stage every moved tile's source blobs to disk *before* any write.

    Destination directories are keyed by tile index, and a moved
    tile's destination can be another moved tile's source (axes
    shifting positions permute indices) — so all sources must be
    secured before the first destination write.  Each blob is streamed
    (bounded memory, however many tiles move) into a per-destination
    temp file under ``stage_dir``, content-verified by sha256 as it is
    copied, and fsynced; :meth:`TileWriter.reuse_tile` later renames it
    into place.  A blob that fails verification drops its tile from
    the result, demoting it to "execute".
    """
    staged: Dict[int, Dict[str, str]] = {}
    for tile, _fp, old_record in moves:
        source_dir = os.path.join(
            store_path, TILES_DIR, tile_dirname(old_record["index"])
        )
        files: Dict[str, str] = {}
        for name, col in old_record["columns"].items():
            src = os.path.join(source_dir, col["file"])
            dst = os.path.join(
                stage_dir, f"{tile.index:06d}.{col['file']}"
            )
            digest = hashlib.sha256()
            try:
                with open(src, "rb") as reader, open(dst, "wb") as writer:
                    while True:
                        block = reader.read(_COPY_BLOCK)
                        if not block:
                            break
                        digest.update(block)
                        writer.write(block)
                    writer.flush()
                    os.fsync(writer.fileno())
            except OSError:
                files = {}
                break
            if digest.hexdigest() != col["sha256"]:
                files = {}
                break
            files[name] = dst
        if files:
            staged[tile.index] = files
    return staged


def run_sweep_delta(
    sweep,
    backend: str = "auto",
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    dtype: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    sinks: Sequence[ResultSink] = (),
    progress: Optional[ProgressFn] = None,
) -> Dict[str, Any]:
    """Incrementally (re-)materialise a sweep's tile store.

    ``sinks`` must be exactly one :class:`~repro.store.sink.TileSink`
    — delta semantics are defined by the store's manifest, and row
    sinks would have to re-emit every row anyway (use a full run for
    those).  With no manifest at the sink's path this degrades to an
    ordinary full streaming run.  An existing manifest is *consumed*
    (removed from disk) as soon as it is read, before any blob is
    touched: a delta killed mid-run therefore reads as "no store
    here", never as a readable mix of old and new generations.
    Returns the streaming meta dict extended with
    ``delta``/``tiles_*``/``bytes_*`` accounting.
    """
    sinks = tuple(sinks)
    if len(sinks) != 1 or not isinstance(sinks[0], TileSink):
        raise DomainError(
            "delta sweeps write tile stores: pass exactly one TileSink "
            "(row sinks re-emit every row and gain nothing from deltas)"
        )
    sink = sinks[0]

    started = time.perf_counter()
    compile_before = compile_seconds()
    if isinstance(sweep, ExecutionPlan):
        if chunk_size is not None and chunk_size != sweep.chunk_size:
            raise DomainError(
                "chunk_size conflicts with the already-lowered plan; "
                "re-lower the sweep instead"
            )
        if dtype is not None and dtype != sweep.dtype:
            raise DomainError(
                "dtype conflicts with the already-lowered plan; "
                "re-lower the sweep instead"
            )
        plan = sweep
        plan_elapsed = 0.0
    else:
        plan = lower(sweep, chunk_size=chunk_size, dtype=dtype)
        plan_elapsed = time.perf_counter() - started
    if not plan.pipeline.deterministic and plan.master_seed is None:
        raise DomainError(
            f"pipeline {plan.pipeline_name!r} is stochastic and the "
            f"sweep has no seed: rows are not reproducible, so a delta "
            f"run cannot guarantee bit-identity with a full run; set a "
            f"sweep seed or run without delta"
        )

    layout = TileLayout(
        plan,
        tile_scenarios=sink.tile_scenarios,
        tile_shape=sink.tile_shape,
    )
    try:
        old = read_manifest(sink.path)
    except DomainError:
        old = None
    if old is None:
        meta = run_sweep_streaming(
            plan, backend=backend, max_workers=max_workers,
            cache=cache, sinks=(sink,), progress=progress,
        )
        writer = sink.writer
        assert writer is not None
        return _delta_meta(meta, writer, layout.n_tiles)

    _effective, label = _resolve_backend(plan, backend)
    meta: Dict[str, Any] = {
        "pipeline": plan.pipeline_name,
        "backend": label,
        "n_scenarios": plan.n_scenarios,
        "n_chunks": plan.n_chunks,
        "chunk_size": plan.chunk_size,
        "dtype": plan.dtype,
    }
    # The old manifest is in memory now; remove it from disk before any
    # blob is touched.  A delta killed mid-run must read as "no store
    # here" (like an interrupted full run) — were the manifest left in
    # place, readers would silently serve a mix of generations, and a
    # later delta would stamp the old hashes onto the new bytes.
    try:
        os.remove(manifest_path(sink.path))
    except OSError:
        pass
    writer = TileWriter(sink.path, layout)

    old_by_index: Dict[int, Dict[str, Any]] = {
        record["index"]: record for record in old.get("tiles", [])
    }
    old_by_fp: Dict[str, Dict[str, Any]] = {}
    for record in old.get("tiles", []):
        old_by_fp.setdefault(record["fingerprint"], record)

    execute_elapsed = sink_elapsed = 0.0
    hits = misses = 0
    with tracer.span("sweep.delta", pipeline=plan.pipeline_name,
                     backend=label, n_scenarios=plan.n_scenarios,
                     n_tiles=layout.n_tiles) as root_span:
        # Triage every tile before touching the store: moved-tile
        # sources must be buffered before any destination write can
        # clobber them.
        skipped: List[Tuple[Tile, str, Dict[str, Any]]] = []
        moved: List[Tuple[Tile, str, Dict[str, Any]]] = []
        pending: List[Tuple[Tile, str]] = []
        for tile in layout.tiles():
            fp = layout.fingerprint(tile)
            record = old_by_index.get(tile.index)
            if record is not None and record["fingerprint"] == fp:
                skipped.append((tile, fp, record))
                continue
            record = old_by_fp.get(fp)
            if record is not None:
                moved.append((tile, fp, record))
            else:
                pending.append((tile, fp))

        stage_dir = os.path.join(sink.path, STAGE_DIR)
        shutil.rmtree(stage_dir, ignore_errors=True)  # a crashed delta's
        if moved:
            os.makedirs(stage_dir, exist_ok=True)
        try:
            move_staged = _stage_move_sources(sink.path, moved, stage_dir)
            for tile, fp, record in moved:
                staged = move_staged.get(tile.index)
                if staged is None:
                    pending.append((tile, fp))
                    continue
                source_dir = os.path.join(
                    sink.path, TILES_DIR, tile_dirname(record["index"])
                )
                try:
                    writer.reuse_tile(tile, fp, record, source_dir,
                                      staged=staged)
                except DomainError:
                    pending.append((tile, fp))
        finally:
            shutil.rmtree(stage_dir, ignore_errors=True)
        for tile, fp, record in skipped:
            source_dir = writer.tile_dir(tile.index)
            try:
                writer.reuse_tile(tile, fp, record, source_dir)
            except DomainError:
                pending.append((tile, fp))

        pending.sort(key=lambda item: item[0].index)
        done_tiles = layout.n_tiles - len(pending)
        done_rows = sum(
            record["rows"]
            for records in (skipped, moved)
            for _tile, _fp, record in records
        )
        if progress is not None and layout.n_tiles:
            progress(done_tiles, layout.n_tiles, done_rows,
                     plan.n_scenarios)
        for tile, fp in pending:
            stage_start = time.perf_counter()
            scenarios = plan.chunk_scenarios(
                Chunk(-1, tile.start, tile.stop)
            )
            sub_plan = lower(
                scenarios,
                chunk_size=min(plan.chunk_size, max(1, tile.n_scenarios)),
                dtype=plan.dtype,
            )
            rows = []
            for chunk_results in stream_results(
                sub_plan, backend=backend, max_workers=max_workers,
                cache=cache,
            ):
                rows.extend(chunk_results)
            chunk_hits = sum(1 for row in rows if row.from_cache)
            hits += chunk_hits
            misses += len(rows) - chunk_hits
            execute_elapsed += time.perf_counter() - stage_start
            stage_start = time.perf_counter()
            writer.write_tile(tile, rows, fingerprint=fp)
            sink_elapsed += time.perf_counter() - stage_start
            done_tiles += 1
            done_rows += len(rows)
            if progress is not None:
                progress(done_tiles, layout.n_tiles, done_rows,
                         plan.n_scenarios)

        stage_start = time.perf_counter()
        manifest = writer.finalise()
        sink.adopt(writer, manifest)
        sink_elapsed += time.perf_counter() - stage_start
        root_span.set(tiles_executed=writer.tiles_written,
                      tiles_skipped=writer.tiles_skipped,
                      tiles_moved=writer.tiles_moved,
                      bytes_reused=writer.bytes_reused)

    meta["cache_hits"] = hits
    meta["cache_misses"] = misses
    meta["rows"] = plan.n_scenarios
    meta["elapsed_s"] = time.perf_counter() - started
    meta["stage_timings"] = {
        "plan_s": plan_elapsed,
        "compile_s": compile_seconds() - compile_before,
        "execute_s": execute_elapsed,
        "sink_s": sink_elapsed,
    }
    return _delta_meta(meta, writer, layout.n_tiles)
