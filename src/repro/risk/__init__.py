"""Risk assessment: demand models, ALARP/ACARP verdicts, assurance planning."""

from .alarp import (
    AlarpAcarpVerdict,
    AlarpThresholds,
    RiskRegion,
    classify,
    classify_values,
    combined_verdict,
)
from .decision import AssurancePlan, plan_assurance, tests_to_reach_confidence
from .model import RiskModel, RiskSummary

__all__ = [
    "AlarpAcarpVerdict",
    "AlarpThresholds",
    "RiskRegion",
    "classify",
    "classify_values",
    "combined_verdict",
    "AssurancePlan",
    "plan_assurance",
    "tests_to_reach_confidence",
    "RiskModel",
    "RiskSummary",
]
