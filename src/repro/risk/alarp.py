"""ALARP regions and the combined ALARP + ACARP verdict.

ALARP partitions risk into *unacceptable*, *tolerable* (reduce as low as
reasonably practicable) and *broadly acceptable* regions by comparing the
assessed failure measure with two thresholds.  The paper's point is that
the comparison should be made with defensible confidence — hence the
combined verdict here, which applies an ACARP confidence requirement to
the region boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..core.acarp import AcarpTarget, evaluate
from ..distributions import JudgementDistribution
from ..errors import DomainError

__all__ = ["RiskRegion", "AlarpThresholds", "classify", "classify_values",
           "AlarpAcarpVerdict", "combined_verdict"]


class RiskRegion(Enum):
    """The three ALARP regions."""

    UNACCEPTABLE = "unacceptable"
    TOLERABLE = "tolerable (reduce ALARP)"
    BROADLY_ACCEPTABLE = "broadly acceptable"


@dataclass(frozen=True)
class AlarpThresholds:
    """Failure-measure thresholds separating the ALARP regions.

    ``intolerable_above``: values at or above this are unacceptable.
    ``acceptable_below``: values below this are broadly acceptable.
    """

    intolerable_above: float
    acceptable_below: float

    def __post_init__(self):
        if self.acceptable_below <= 0:
            raise DomainError("acceptable threshold must be positive")
        if self.intolerable_above <= self.acceptable_below:
            raise DomainError(
                "intolerable threshold must exceed the acceptable threshold"
            )


def classify(value: float, thresholds: AlarpThresholds) -> RiskRegion:
    """ALARP region of a point value."""
    if value < 0:
        raise DomainError("failure measure cannot be negative")
    if value >= thresholds.intolerable_above:
        return RiskRegion.UNACCEPTABLE
    if value < thresholds.acceptable_below:
        return RiskRegion.BROADLY_ACCEPTABLE
    return RiskRegion.TOLERABLE


def classify_values(values, intolerable_above, acceptable_below) -> np.ndarray:
    """Vectorised :func:`classify`: ALARP regions for aligned arrays.

    All three arguments broadcast; the result is an object array of
    :class:`RiskRegion` members, with element ``i`` equal to
    ``classify(values[i], AlarpThresholds(...))`` (the same strict/weak
    boundary comparisons).  This is the sweep-engine kernel; scalar code
    should keep using :func:`classify`.
    """
    values = np.atleast_1d(np.asarray(values, dtype=float))
    intolerable = np.asarray(intolerable_above, dtype=float)
    acceptable = np.asarray(acceptable_below, dtype=float)
    if np.any(values < 0):
        raise DomainError("failure measure cannot be negative")
    if np.any(acceptable <= 0) or np.any(intolerable <= acceptable):
        raise DomainError(
            "thresholds must satisfy 0 < acceptable < intolerable"
        )
    out = np.full(np.broadcast(values, intolerable, acceptable).shape,
                  RiskRegion.TOLERABLE, dtype=object)
    out[np.broadcast_to(values >= intolerable, out.shape)] = (
        RiskRegion.UNACCEPTABLE
    )
    out[np.broadcast_to((values < acceptable) & (values < intolerable),
                        out.shape)] = RiskRegion.BROADLY_ACCEPTABLE
    return out


@dataclass(frozen=True)
class AlarpAcarpVerdict:
    """Region by the mean, plus confidence the system avoids the worst."""

    region_by_mean: RiskRegion
    confidence_not_unacceptable: float
    confidence_broadly_acceptable: float
    acarp_met: bool

    def describe(self) -> str:
        return (
            f"region (by mean): {self.region_by_mean.value}; "
            f"P(not unacceptable) = {self.confidence_not_unacceptable:.2%}; "
            f"P(broadly acceptable) = {self.confidence_broadly_acceptable:.2%}; "
            f"ACARP {'met' if self.acarp_met else 'NOT met'}"
        )


def combined_verdict(
    judgement: JudgementDistribution,
    thresholds: AlarpThresholds,
    required_confidence: float = 0.90,
) -> AlarpAcarpVerdict:
    """ALARP by the mean, ACARP on staying out of the unacceptable region.

    ``required_confidence`` is the ACARP requirement on
    ``P(measure < intolerable threshold)``.
    """
    mean = judgement.mean()
    verdict = evaluate(
        judgement,
        AcarpTarget(
            claim_bound=min(thresholds.intolerable_above, 1.0),
            required_confidence=required_confidence,
        ),
    )
    return AlarpAcarpVerdict(
        region_by_mean=classify(mean, thresholds),
        confidence_not_unacceptable=judgement.confidence(
            min(thresholds.intolerable_above, 1.0)
        ),
        confidence_broadly_acceptable=judgement.confidence(
            min(thresholds.acceptable_below, 1.0)
        ),
        acarp_met=verdict.meets_target,
    )
