"""Risk models combining dependability judgements with demand profiles.

The paper scopes itself to the dependability-assessment half of risk
("we shall address this dependability assessment problem only, and not
further discuss the cost/consequence part"); this package supplies the
other half so the library supports end-to-end decisions: a judgement
distribution over the pfd, a demand rate, and a consequence cost combine
into an annual-risk distribution.

The headline subtlety the paper's eq. (4) forces on us: expected risk must
use ``E[pfd]`` — the *mean* of the judgement — not its mode or median.
:meth:`RiskModel.optimism_factor` quantifies how badly a mode-based
assessment understates risk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions import JudgementDistribution
from ..errors import DomainError

__all__ = ["RiskModel", "RiskSummary"]


@dataclass(frozen=True)
class RiskSummary:
    """Annualised risk figures from a :class:`RiskModel`."""

    expected_annual_failures: float
    expected_annual_cost: float
    mode_based_annual_failures: float
    percentile_95_annual_failures: float

    @property
    def optimism_factor(self) -> float:
        """Expected / mode-based annual failures (>= 1 for skewed beliefs)."""
        if self.mode_based_annual_failures <= 0:
            return float("inf")
        return self.expected_annual_failures / self.mode_based_annual_failures


@dataclass(frozen=True)
class RiskModel:
    """A demand-mode risk model: judgement x demand rate x consequence."""

    judgement: JudgementDistribution
    demands_per_year: float
    cost_per_failure: float = 1.0

    def __post_init__(self):
        if self.demands_per_year <= 0:
            raise DomainError("demand rate must be positive")
        if self.cost_per_failure < 0:
            raise DomainError("consequence cost must be non-negative")

    # ------------------------------------------------------------------ #
    # Expectations
    # ------------------------------------------------------------------ #

    def expected_annual_failures(self) -> float:
        """``E[pfd] * demands/year`` (the paper's eq. (4) annualised)."""
        return self.judgement.mean() * self.demands_per_year

    def expected_annual_cost(self) -> float:
        """Expected annual consequence cost."""
        return self.expected_annual_failures() * self.cost_per_failure

    def mode_based_annual_failures(self) -> float:
        """The (wrong) figure a most-likely-value assessment would report."""
        return self.judgement.mode() * self.demands_per_year

    def annual_failures_quantile(self, q: float) -> float:
        """Quantile of the annual failure *rate* induced by the judgement."""
        if not 0 < q < 1:
            raise DomainError("quantile must lie strictly in (0, 1)")
        return float(self.judgement.ppf(q)) * self.demands_per_year

    def summary(self) -> RiskSummary:
        return RiskSummary(
            expected_annual_failures=self.expected_annual_failures(),
            expected_annual_cost=self.expected_annual_cost(),
            mode_based_annual_failures=self.mode_based_annual_failures(),
            percentile_95_annual_failures=self.annual_failures_quantile(0.95),
        )

    # ------------------------------------------------------------------ #
    # Uncertainty propagation
    # ------------------------------------------------------------------ #

    def probability_of_any_failure(self, years: float = 1.0) -> float:
        """``P(at least one failure over the horizon)``, marginal over pfd.

        Demands are Bernoulli(p) given the pfd; over ``n = years * rate``
        demands the failure-free probability is ``E[(1-p)^n]``.
        """
        if years <= 0:
            raise DomainError("horizon must be positive")
        n = self.demands_per_year * years
        from ..update.posterior import default_pfd_grid
        from ..numerics import trapezoid

        grid = default_pfd_grid()
        density = np.asarray(self.judgement.pdf(grid), dtype=float)
        survival = np.power(1.0 - np.clip(grid, 0.0, 1.0), n)
        ok = trapezoid(density * survival, grid) + float(self.judgement.cdf(0.0))
        return float(np.clip(1.0 - ok, 0.0, 1.0))

    def sampled_annual_cost(
        self,
        rng: np.random.Generator,
        n_samples: int = 10_000,
        years: float = 1.0,
    ) -> np.ndarray:
        """Monte-Carlo annual cost: pfd draw -> binomial failures -> cost."""
        if n_samples < 1:
            raise DomainError("n_samples must be positive")
        pfd = np.clip(self.judgement.sample(rng, n_samples), 0.0, 1.0)
        demands = max(int(round(self.demands_per_year * years)), 0)
        failures = rng.binomial(demands, pfd)
        return failures * self.cost_per_failure / max(years, 1e-12)
