"""Decision support: how much more assurance is reasonably practicable?

ACARP asks for confidence "as high as reasonably practicable" — a
cost-benefit judgement.  This module prices the paper's Section 4.1
confidence-building move (failure-free statistical testing) against a
confidence target: how many tests close the gap, what do they cost, and
is the spend justified by the risk reduction it certifies?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from ..core.acarp import AcarpTarget
from ..distributions import JudgementDistribution
from ..errors import DomainError
from ..update import DemandEvidence, survival_update

__all__ = ["tests_to_reach_confidence", "AssurancePlan", "plan_assurance"]


def tests_to_reach_confidence(
    prior: JudgementDistribution,
    target: AcarpTarget,
    max_tests: int = 10_000_000,
) -> Optional[int]:
    """Failure-free demands needed to reach the confidence target.

    Returns the smallest test count whose posterior clears the target, by
    doubling then bisection; ``None`` if ``max_tests`` cannot reach it
    (confidence from failure-free testing saturates at ``1 - P(pfd = 0
    exactly at the bound's wrong side)`` only in the limit).
    """
    if prior.confidence(target.claim_bound) >= target.required_confidence:
        return 0

    def achieved(n_tests: int) -> float:
        posterior = survival_update(prior, DemandEvidence(demands=n_tests))
        return posterior.confidence(target.claim_bound)

    # Exponential search for an upper bracket.
    n = 1
    while achieved(n) < target.required_confidence:
        n *= 2
        if n > max_tests:
            return None
    low, high = n // 2, n
    while high - low > 1:
        mid = (low + high) // 2
        if achieved(mid) >= target.required_confidence:
            high = mid
        else:
            low = mid
    return high


@dataclass(frozen=True)
class AssurancePlan:
    """A costed plan to close a confidence gap by statistical testing."""

    target: AcarpTarget
    tests_needed: Optional[int]
    cost_per_test: float
    total_cost: Optional[float]
    achieved_confidence: float
    reasonably_practicable: Optional[bool]

    def describe(self) -> str:
        if self.tests_needed is None:
            return (
                f"target {self.target.required_confidence:.1%} at pfd < "
                f"{self.target.claim_bound:g} is unreachable by statistical "
                f"testing within the search budget"
            )
        verdict = ""
        if self.reasonably_practicable is not None:
            verdict = (
                "; reasonably practicable"
                if self.reasonably_practicable
                else "; grossly disproportionate (not required by ACARP)"
            )
        return (
            f"{self.tests_needed} failure-free demands reach "
            f"{self.achieved_confidence:.2%} confidence in pfd < "
            f"{self.target.claim_bound:g} at cost {self.total_cost:g}"
            f"{verdict}"
        )


def plan_assurance(
    prior: JudgementDistribution,
    target: AcarpTarget,
    cost_per_test: float = 1.0,
    benefit_of_meeting_target: Optional[float] = None,
    max_tests: int = 10_000_000,
) -> AssurancePlan:
    """Cost out the testing needed to meet an ACARP target.

    When ``benefit_of_meeting_target`` is given, the plan is judged
    reasonably practicable iff the cost does not grossly exceed the
    benefit (factor-of-ten gross disproportion, the conventional ALARP
    reading).
    """
    if cost_per_test < 0:
        raise DomainError("cost per test must be non-negative")
    tests = tests_to_reach_confidence(prior, target, max_tests)
    if tests is None:
        return AssurancePlan(
            target=target,
            tests_needed=None,
            cost_per_test=cost_per_test,
            total_cost=None,
            achieved_confidence=prior.confidence(target.claim_bound),
            reasonably_practicable=None,
        )
    if tests == 0:
        achieved = prior.confidence(target.claim_bound)
    else:
        achieved = survival_update(
            prior, DemandEvidence(demands=tests)
        ).confidence(target.claim_bound)
    total = tests * cost_per_test
    practicable: Optional[bool] = None
    if benefit_of_meeting_target is not None:
        if benefit_of_meeting_target < 0:
            raise DomainError("benefit must be non-negative")
        practicable = total <= 10.0 * benefit_of_meeting_target
    return AssurancePlan(
        target=target,
        tests_needed=tests,
        cost_per_test=cost_per_test,
        total_cost=total,
        achieved_confidence=achieved,
        reasonably_practicable=practicable,
    )
