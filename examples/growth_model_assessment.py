"""The Section 3 'best-fit growth model' route to a SIL, end to end.

Simulates a pre-operational test campaign (a Jelinski-Moranda failure
process), fits the model, assesses its prediction accuracy with a u-plot,
adds an assumption-violation margin, and derives the SIL judgement —
then compares against the worst-case conservative route and the
Bishop-Bloomfield bound.

Run:  python examples/growth_model_assessment.py
"""

import numpy as np

from repro.growthmodels import (
    jelinski_moranda,
    judgement_from_history,
    littlewood_verrall,
)
from repro.sil import ArgumentRigour, assess
from repro.standards import recommended_policy
from repro.sil import claimable_level
from repro.update import worst_case_intensity
from repro.viz import format_table


def main() -> None:
    rng = np.random.default_rng(61508)

    # --- The (synthetic) test campaign. -----------------------------------
    true_faults, true_rate, observed = 50, 5e-5, 46
    history = jelinski_moranda.simulate_interfailure_times(
        true_faults, true_rate, observed, rng
    )
    true_pfd = true_rate * (true_faults - observed)
    print(
        f"simulated campaign: {observed} failures observed; true current "
        f"pfd = {true_pfd:.2g}"
    )
    print()

    # --- Fit, assess predictions, add the margin. -------------------------
    rows = []
    for margin in (0.0, 0.5, 1.0):
        derived = judgement_from_history(history,
                                         assumption_margin_decades=margin)
        rows.append([
            margin,
            derived.judgement.mode(),
            derived.judgement.mean(),
            str(derived.claimable_sil(0.90)),
        ])
    derived = judgement_from_history(history, assumption_margin_decades=0.5)
    print(derived.describe())
    print()
    print(format_table(
        ["assumption margin (decades)", "judgement mode", "judgement mean",
         "claimable SIL @90%"],
        rows,
    ))
    print()

    # --- Full assessment of the margined judgement. -----------------------
    print(assess(derived.judgement, required_confidence=0.90).summary())
    policy = recommended_policy(ArgumentRigour.QUANTITATIVE_BEST_FIT, 0.90)
    print(f"policy-discounted claim: SIL "
          f"{claimable_level(derived.judgement, policy)}")
    print()

    # --- Cross-checks. -----------------------------------------------------
    n_residual = max(int(round(derived.fit.residual_faults)), 1)
    demands_so_far = float(np.sum(history))
    bound = worst_case_intensity(n_residual, demands_so_far)
    print(
        f"Bishop-Bloomfield worst case with {n_residual} residual faults "
        f"after {demands_so_far:.0f} demands: intensity <= {bound:.3g} "
        f"(JM best estimate {derived.fit.current_intensity():.3g})"
    )

    lv_fit = littlewood_verrall.fit(history)
    print(
        f"Littlewood-Verrall cross-fit: current intensity "
        f"{lv_fit.current_intensity():.3g} "
        f"({'growth visible' if lv_fit.shows_growth else 'no growth'})"
    )


if __name__ == "__main__":
    main()
