"""Delta sweeps — only compute the tiles whose inputs changed.

A :class:`repro.store.TileSink` materialises a sweep as a **tiled
columnar store**: parameter-plane-aligned NumPy tiles, one ``.npy``
blob per result column per tile, plus a JSON manifest carrying a
content fingerprint for every tile (scenario spec + axis windows +
seed window + referenced-file content).  Those fingerprints make
re-runs incremental: ``run_sweep_streaming(..., delta=True)`` diffs
the new plan against the manifest and executes only the tiles whose
fingerprint has no match — everything else is adopted (same index) or
copied (fingerprint found elsewhere, e.g. after an axis grew).  The
finished store is bit-identical to a from-scratch run.

This example walks the workflow:

1. **materialise** — stream a whole-case sweep into a tile store;
2. **no-op delta** — re-run unchanged: every tile skips;
3. **grow an axis** — add grid values: old tiles *move*, new ones run;
4. **edit an input file** — change the case file the sweep references:
   every fingerprint changes, so everything honestly re-executes;
5. **query** — slice the finished store without executing anything.

Run with::

    PYTHONPATH=src python examples/delta_sweep.py

The CLI equivalent::

    PYTHONPATH=src python -m repro.cli sweep \
        --spec examples/sweep_spec.yaml --stream --store family_store
    PYTHONPATH=src python -m repro.cli sweep \
        --spec examples/sweep_spec.yaml --stream --store family_store \
        --delta
    PYTHONPATH=src python -m repro.cli store stats family_store
    PYTHONPATH=src python -m repro.cli store query family_store \
        --fix sigma=0.9 --columns confidence
"""

import pathlib
import shutil
import tempfile

from repro.engine import SweepSpec, run_sweep_streaming
from repro.store import TileSink, TileStore

workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_delta_"))
store_path = str(workdir / "confidence_store")

# The sweep references an input file; its *content* is folded into
# every tile fingerprint, so edits to it invalidate the store even
# though the sweep spec itself is unchanged.  Work on a private copy.
case_file = str(workdir / "case_confidence.yaml")
shutil.copy(pathlib.Path(__file__).parent / "case_confidence.yaml",
            case_file)


def sweep_over(p_trues):
    return SweepSpec(
        pipeline="case_confidence",
        base={"case_file": case_file},
        grid={
            "A1.p_true": p_trues,
            "S1.dependence": [round(0.02 * i, 2) for i in range(50)],
        },
    )


def report(label, meta):
    print(f"{label}: {meta['tiles_executed']}/{meta['tiles_total']} tiles "
          f"executed ({meta['tiles_skipped']} skipped, "
          f"{meta['tiles_moved']} moved), {meta['rows_executed']} rows "
          f"computed, {meta['bytes_reused']} bytes reused, "
          f"{meta['elapsed_s']:.3f}s")


# 1. Materialise: 20 x 50 = 1,000 scenarios, 20 tiles of 50 (one tile
#    per A1.p_true value, spanning the whole S1.dependence axis).
p_trues = [round(0.5 + 0.01 * i, 2) for i in range(20)]
meta = run_sweep_streaming(
    sweep_over(p_trues),
    sinks=(TileSink(store_path, tile_scenarios=50),), delta=True,
)
report("initial run", meta)

# 2. No-op delta: nothing changed, nothing executes.
meta = run_sweep_streaming(
    sweep_over(p_trues),
    sinks=(TileSink(store_path, tile_scenarios=50),), delta=True,
)
report("unchanged   ", meta)

# 3. Prepend an axis value: every old tile's data is still valid but
#    now lives at the next index over.  The fingerprints match at the
#    shifted positions, so the blobs are *moved* (hash-verified copy,
#    zero kernel work) and only the genuinely new tile executes.
meta = run_sweep_streaming(
    sweep_over([0.49] + p_trues),
    sinks=(TileSink(store_path, tile_scenarios=50),), delta=True,
)
report("axis grown  ", meta)

# 4. Edit the referenced case file: assumption A2's probability moves,
#    so every tile's fingerprint changes (file *content* is folded in)
#    and the whole store honestly recomputes.
text = pathlib.Path(case_file).read_text(encoding="utf-8")
pathlib.Path(case_file).write_text(
    text.replace("probability_true: 0.90", "probability_true: 0.85"),
    encoding="utf-8")
meta = run_sweep_streaming(
    sweep_over([0.49] + p_trues),
    sinks=(TileSink(store_path, tile_scenarios=50),), delta=True,
)
report("file edited ", meta)

# 5. Query the finished store: slicing reads tiles, never kernels.
store = TileStore.open(store_path)
print(f"\nstore: {store.n_scenarios} scenarios, grid "
      f"{store.grid_shape} in {store.n_tiles} tiles, "
      f"columns {store.columns}")
sl = store.slice(columns=["top_confidence"], **{"A1.p_true": 0.6})
print(f"slice A1.p_true=0.6: top_confidence over {sl.shape} "
      f"S1.dependence values, "
      f"min {sl.column('top_confidence').min():.4f}, "
      f"max {sl.column('top_confidence').max():.4f}")
