"""Compiled BBN inference — compile once, query many.

The argument-confidence layer answers repeated posterior queries over
Bayesian networks.  ``repro.bbn`` lowers a network once into integer
state codes and contiguous CPT arrays (:func:`repro.bbn.compile_network`)
and then answers every query on that flat form: variable elimination as
einsum contractions, likelihood weighting as fully vectorised forward
sampling.  This example walks three levels of usage:

1. direct compiled queries on the paper's two-leg argument network;
2. the same compiled network driving a Monte-Carlo sweep through
   ``repro.engine`` — compilation is memoised by network content hash,
   so the whole sweep shares one lowering;
3. the compatibility contract: the public ``VariableElimination`` /
   ``likelihood_weighting`` APIs delegate to the same engine.

Run with::

    PYTHONPATH=src python examples/bbn_inference.py
"""

import numpy as np

from repro.arguments import ArgumentLeg, build_two_leg_network
from repro.bbn import (
    VariableElimination,
    compile_cache_stats,
    compile_network,
    likelihood_weighting,
)
from repro.engine import SweepSpec, run_sweep

# ---------------------------------------------------------------- #
# 1. Compile the two-leg argument network and query it directly.
# ---------------------------------------------------------------- #
testing = ArgumentLeg("testing", 0.9, 0.95, 0.9)
analysis = ArgumentLeg("analysis", 0.88, 0.9, 0.85)
network = build_two_leg_network(0.6, testing, analysis, dependence=0.3)

compiled = compile_network(network)
both_passed = {"evidence_leg1": "true", "evidence_leg2": "true"}

posterior = compiled.query("claim", both_passed)
print("exact P(claim | both legs passed):", round(posterior["true"], 6))
print("P(both legs pass):",
      round(compiled.probability_of_evidence(both_passed), 6))

approx = compiled.likelihood_weighting(
    "claim", both_passed, n_samples=20_000, rng=np.random.default_rng(2007)
)
print("20k-sample likelihood weighting:  ", round(approx["true"], 6))

# ---------------------------------------------------------------- #
# 2. A Monte-Carlo sweep: 20 sample budgets through the ``bbn_query``
#    pipeline.  Every scenario rebuilds an identical-content network,
#    so the compile cache serves one lowering to the whole sweep.
# ---------------------------------------------------------------- #
sweep = SweepSpec(
    pipeline="bbn_query",
    base={
        "prior": 0.6, "dependence": 0.3,
        "leg1_validity": 0.9, "leg1_sensitivity": 0.95,
        "leg1_specificity": 0.9,
        "leg2_validity": 0.88, "leg2_sensitivity": 0.9,
        "leg2_specificity": 0.85,
    },
    grid={"n_samples": [500 * (i + 1) for i in range(20)]},
    seed=2007,
)
results = run_sweep(sweep)
print("\nsweep:", results.summary())
print(results.to_table(columns=["n_samples", "p_claim"], limit=5))
print("compile cache after the sweep:", compile_cache_stats())

# ---------------------------------------------------------------- #
# 3. The legacy APIs run on the same compiled engine.
# ---------------------------------------------------------------- #
engine = VariableElimination(network)
assert engine.query("claim", both_passed) == posterior
assert likelihood_weighting(
    network, "claim", both_passed, n_samples=20_000,
    rng=np.random.default_rng(2007),
) == approx
print("\npublic VariableElimination/likelihood_weighting delegate "
      "to the compiled engine")
