"""Composing subsystem claims — and why redundancy claims need care.

Builds a protection architecture (a 2-out-of-3 sensor vote in series with
a 1-out-of-2 actuation pair), propagates the component judgements to a
system-level pfd judgement, shows how subsystem doubts *add* under
conservative composition, and how common-cause failure (the IEC 61508
beta factor) erodes naive redundancy claims — the system-level analogue
of the paper's warning about dependence between argument legs.

Run:  python examples/system_composition.py
"""

import numpy as np

from repro.core import (
    Component,
    KOutOfNBlock,
    ParallelBlock,
    SeriesBlock,
    SinglePointBelief,
    SystemStructure,
    beta_factor_1oo2,
    compose_series_beliefs,
)
from repro.distributions import LogNormalJudgement
from repro.sil import LOW_DEMAND
from repro.viz import format_table


def main() -> None:
    rng = np.random.default_rng(2007)

    sensor = LogNormalJudgement.from_mode_sigma(5e-3, 0.8)
    actuator = LogNormalJudgement.from_mode_sigma(2e-3, 0.7)

    # --- Structure: (2oo3 sensors) -> (1oo2 actuators). ------------------
    system = SystemStructure(
        "protection function",
        SeriesBlock([
            KOutOfNBlock(2, [Component(f"sensor-{i}", sensor)
                             for i in range(3)]),
            ParallelBlock([Component("actuator-A", actuator),
                           Component("actuator-B", actuator)]),
        ]),
    )
    judgement = system.judgement(rng, n_samples=100_000)
    print(f"system: {system.name}")
    print(f"  E[pfd]   = {judgement.mean():.3g}")
    print(f"  P(SIL2+) = {judgement.cdf(1e-2):.2%}")
    print(f"  P(SIL3+) = {judgement.cdf(1e-3):.2%}")
    print(f"  SIL band of mean: {LOW_DEMAND.level_of(judgement.mean())}")
    print()

    # --- Conservative belief composition: doubts add. --------------------
    subsystem_beliefs = [
        SinglePointBelief(2e-4, 0.99),   # sensors subsystem claim
        SinglePointBelief(2e-4, 0.99),   # actuation subsystem claim
        SinglePointBelief(1e-4, 0.995),  # logic solver claim
    ]
    composed = compose_series_beliefs(subsystem_beliefs)
    print("conservative series composition of subsystem beliefs:")
    for belief in subsystem_beliefs:
        print(f"  {belief}")
    print(f"  => {composed}  (doubts add: {composed.doubt:.3f})")
    print()

    # --- Common cause: the beta-factor ablation. -------------------------
    rows = []
    for beta in (0.0, 0.01, 0.05, 0.10, 0.20):
        pair = beta_factor_1oo2(actuator, beta, rng, n_samples=100_000)
        rows.append([beta, pair.mean(), LOW_DEMAND.level_of(pair.mean())])
    print("1oo2 actuation pair vs common-cause fraction beta:")
    print(format_table(
        ["beta", "E[pfd] of the pair", "SIL band of mean"], rows
    ))
    print(
        "\nnaive independence (beta = 0) overstates the redundant pair by "
        "orders of magnitude — dependence erodes composed claims exactly "
        "as it erodes multi-legged arguments (paper section 4.2)."
    )


if __name__ == "__main__":
    main()
