"""Sharded sweeps — multi-process execution with crash-safe resume.

The streaming executor's plans address every chunk deterministically
(scenario ``i`` is mixed-radix grid arithmetic; its seed is the ``i``-th
spawned child of the master seed), so a sweep can be split across
worker processes and merged back in order with **bit-identical**
output.  This example walks the coordinator:

1. **shard** — split a plan into disjoint sub-plans and check the
   invariant ``concat(shards) == whole``;
2. **dispatch** — run the sweep across 4 worker processes with
   :func:`run_sweep_sharded` and compare bytes with the single-process
   stream;
3. **resume** — simulate a mid-sweep kill (torn output line, torn
   manifest record) and resume: completed chunks are skipped and the
   finished file is byte-identical to the uninterrupted run.

Run with::

    PYTHONPATH=src python examples/sharded_sweep.py

The CLI equivalent::

    PYTHONPATH=src python -m repro.cli sweep \
        --spec examples/sweep_spec.yaml --stream --out rows.jsonl \
        --shards 4
    # ... killed?  Pick up where it stopped:
    PYTHONPATH=src python -m repro.cli sweep \
        --spec examples/sweep_spec.yaml --stream --out rows.jsonl \
        --shards 4 --resume
"""

import hashlib
import pathlib
import tempfile

from repro.engine import (
    JsonlSink,
    SweepSpec,
    lower,
    run_sweep_sharded,
    run_sweep_streaming,
)

case_file = str(pathlib.Path(__file__).parent / "case_confidence.yaml")
workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_shards_"))

sweep = SweepSpec(
    pipeline="case_confidence",
    base={"case_file": case_file},
    grid={
        "A1.p_true": [round(0.5 + 0.005 * i, 3) for i in range(40)],
        "S1.dependence": [round(0.002 * i, 3) for i in range(500)],
    },
)

# ---------------------------------------------------------------- #
# 1. Shard: k disjoint sub-plans over chunk ranges.  Each shard keeps
#    *absolute* chunk indices and seed windows, so concatenating the
#    shards reproduces the whole plan exactly.
# ---------------------------------------------------------------- #
plan = lower(sweep, chunk_size=1024)
shards = [plan.shard(i, 4) for i in range(4)]
for shard in shards:
    print(f"  {shard!r}")
assert sum(s.n_scenarios for s in shards) == plan.n_scenarios
assert [c.index for s in shards for c in s.chunks()] == [
    c.index for c in plan.chunks()
]

# ---------------------------------------------------------------- #
# 2. Dispatch: 4 worker processes, ordered merge, one JSONL output.
#    The bytes are identical to a single-process streaming run.
# ---------------------------------------------------------------- #
single_path = workdir / "single.jsonl"
sharded_path = workdir / "sharded.jsonl"

run_sweep_streaming(sweep, sinks=(JsonlSink(str(single_path)),),
                    chunk_size=1024)
meta = run_sweep_sharded(sweep, shards=4, chunk_size=1024,
                         sinks=(JsonlSink(str(sharded_path)),))
print(f"sharded: {meta['rows']} rows via {meta['backend']} "
      f"in {meta['elapsed_s']:.2f}s")

digest = hashlib.sha256(single_path.read_bytes()).hexdigest()
assert hashlib.sha256(sharded_path.read_bytes()).hexdigest() == digest
print("4-shard output is byte-identical to the single-process stream")

# ---------------------------------------------------------------- #
# 3. Resume: every flushed chunk was checkpointed in a manifest next
#    to the output (sharded.jsonl.manifest).  Tear both files the way
#    a kill -9 would, then resume: completed chunks are skipped and
#    the final bytes still match.
# ---------------------------------------------------------------- #
data = sharded_path.read_bytes()
sharded_path.write_bytes(data[: len(data) // 2 + 17])     # torn row
manifest = workdir / "sharded.jsonl.manifest"
manifest.write_bytes(manifest.read_bytes()[:-20])         # torn record

resumed = run_sweep_sharded(sweep, shards=4, chunk_size=1024,
                            sinks=(JsonlSink(str(sharded_path)),),
                            resume=True)
print(f"resumed: skipped {resumed['resumed_chunks']} chunks "
      f"({resumed['resumed_rows']} rows), re-ran {resumed['rows']}")
assert hashlib.sha256(sharded_path.read_bytes()).hexdigest() == digest
print("resumed output is byte-identical to an uninterrupted run")
