"""Confidence building from operating experience (Section 4.1).

A system enters service with a broad judgement (provisional SIL 1).  As
failure-free demands accumulate, the survival probability cuts off the
high-rate tail of the judgement: confidence in SIL 2 rises, the mean pfd
falls, and the provisional rating can be upgraded.  The conservative
Bishop-Bloomfield growth bound provides the worst-case view alongside.

Run:  python examples/operating_experience.py
"""

from repro.distributions import LogNormalJudgement
from repro.sil import ArgumentRigour, DiscountPolicy
from repro.update import (
    ProvisionalRatingPlan,
    confidence_growth,
    growth_bound_curve,
    hard_cutoff,
    worst_case_mtbf,
)
from repro.viz import format_table, line_chart


def main() -> None:
    prior = LogNormalJudgement.from_mode_sigma(mode=0.003, sigma=0.9)
    band_upper = 1e-2  # SIL 2 bound

    # --- Confidence growth with failure-free demands. --------------------
    counts = [0, 10, 30, 100, 300, 1000, 3000]
    series = confidence_growth(prior, band_upper, counts)
    rows = [[p.demands, f"{p.confidence:.3%}", p.mean, p.median] for p in series]
    print(format_table(
        ["failure-free demands", "P(pfd < 1e-2)", "mean pfd", "median pfd"],
        rows,
    ))
    print()
    print(line_chart(
        [max(p.demands, 1) for p in series],
        [[p.confidence for p in series]],
        labels=["confidence in SIL 2"],
        title="Tests rapidly increase confidence (paper section 4.1)",
        log_x=True,
        x_label="failure-free demands",
        y_label="confidence",
        height=12,
    ))
    print()

    # --- Graded survival update vs idealised hard truncation. ------------
    graded = confidence_growth(prior, band_upper, [1000])[0]
    truncated = hard_cutoff(prior, upper=band_upper)
    print(
        f"after 1000 failure-free demands: mean = {graded.mean:.4g} "
        f"(graded survival update)\n"
        f"idealised hard cut-off at 1e-2:  mean = {truncated.mean():.4g} "
        f"(the limit the update approaches below the cut)"
    )
    print()

    # --- The provisional-rating strategy. ---------------------------------
    plan = ProvisionalRatingPlan(
        prior=prior,
        policy=DiscountPolicy(
            required_confidence=0.90,
            rigour=ArgumentRigour.QUANTITATIVE_CONSERVATIVE,
        ),
        observation_demands=2000,
    )
    outcome = plan.execute()
    print(
        f"provisional SIL {outcome.provisional_level} -> SIL "
        f"{outcome.upgraded_level} after {outcome.observation_demands} "
        f"failure-free demands"
    )
    print(
        f"expected failures during the observation period: "
        f"{outcome.expected_failures_during_observation:.3f} "
        f"(the 'period of greater risk')"
    )
    print(
        f"chance the observation period really is failure-free: "
        f"{plan.probability_failure_free_observation():.2%}"
    )
    print()

    # --- Conservative growth bound (Bishop-Bloomfield). -------------------
    exposures = [100.0, 1000.0, 10000.0, 100000.0]
    curve = growth_bound_curve(n_faults=10, exposures=exposures)
    rows = [[p.exposure, p.worst_intensity, p.worst_mtbf] for p in curve]
    print(format_table(
        ["exposure t (h)", "worst intensity N/(e t)", "worst MTBF e t/N"],
        rows,
    ))
    print(
        f"e.g. 10 residual faults after 1000 h: MTBF >= "
        f"{worst_case_mtbf(10, 1000.0):.1f} h regardless of the fault rates"
    )


if __name__ == "__main__":
    main()
