"""Traced sweeps — watch the plan -> compile -> execute stack work.

The engine's hot paths carry permanent instrumentation
(:mod:`repro.telemetry`) that costs ~nothing while disabled and turns
every sweep into a measured system when enabled.  This example runs the
whole-case confidence sweep from ``examples/case_confidence.yaml`` three
ways:

1. **traced** — :func:`repro.telemetry.capture_trace` scopes a tracer
   around a streaming sweep and exports Chrome trace-event JSON (to a
   temp directory — the printed path); open it at
   https://ui.perfetto.dev (or ``chrome://tracing``) to see the
   plan/compile/execute/sink stages as nested timeline blocks;
2. **metered** — :func:`repro.telemetry.enable_metrics` collects
   process-wide counters that must agree exactly with the sweep's
   ``meta`` counters;
3. **summarised** — :func:`repro.telemetry.render_summary` aggregates
   the trace into a span tree and a self-time hotspot ranking, the same
   report as ``repro-case telemetry summary``.

The equivalent CLI one-liner::

    repro-case sweep --spec examples/sweep_spec.yaml --stream \
        --out rows.jsonl --trace sweep.trace.json --metrics

Run with::

    PYTHONPATH=src python examples/traced_sweep.py
"""

import pathlib
import tempfile

from repro.engine import JsonlSink, SweepSpec, run_sweep_streaming
from repro.telemetry import (
    capture_trace,
    disable_metrics,
    enable_metrics,
    load_trace,
    metrics,
    render_summary,
)

HERE = pathlib.Path(__file__).parent
CASE_FILE = str(HERE / "case_confidence.yaml")


def build_sweep() -> SweepSpec:
    """A 10,000-scenario whole-case sweep over two dials."""
    return SweepSpec(
        pipeline="case_confidence",
        base={"case_file": CASE_FILE},
        grid={
            "A1.p_true": [round(0.5 + 0.005 * i, 3) for i in range(100)],
            "S1.dependence": [round(0.01 * i, 2) for i in range(100)],
        },
    )


def main() -> None:
    sweep = build_sweep()
    out_dir = pathlib.Path(tempfile.mkdtemp())
    rows_path = out_dir / "rows.jsonl"
    trace_path = out_dir / "traced_sweep.trace.json"

    # 1. + 2. Trace and meter one streaming run.
    enable_metrics(reset=True)
    with capture_trace() as trace:
        meta = run_sweep_streaming(
            sweep, sinks=(JsonlSink(str(rows_path)),), chunk_size=2048
        )
    disable_metrics()

    trace.write_chrome_trace(trace_path)
    print(f"{meta['rows']} rows streamed to {rows_path}")
    print(f"trace: {trace_path} ({len(trace)} spans) — "
          "open at https://ui.perfetto.dev")

    stages = meta["stage_timings"]
    print("\nstage breakdown (from meta['stage_timings']):")
    for stage in ("plan_s", "compile_s", "execute_s", "sink_s"):
        print(f"  {stage:<10} {stages[stage]:.4f}s")

    # The metrics registry and the sweep meta count the same events.
    snapshot = metrics.snapshot()
    print("\nmetrics vs meta (must agree exactly):")
    for metric, meta_key in (("engine.rows", "rows"),
                             ("engine.chunks", "n_chunks"),
                             ("engine.cache_misses", "cache_misses")):
        counted = snapshot[metric]["value"]
        expected = meta[meta_key]
        assert counted == expected, (metric, counted, expected)
        print(f"  {metric:<20} {counted:>8} == meta[{meta_key!r}]")

    # 3. Aggregate the exported trace back into a hotspot report.
    print("\n" + render_summary(load_trace(trace_path), top=8))


if __name__ == "__main__":
    main()
