"""Multi-legged arguments: when does a second leg help? (Section 4.2)

Builds a two-leg safety argument (statistical testing + static analysis)
as a GSN graph and as an exact Bayesian network, then sweeps the
dependence between the legs' assumptions to show the Littlewood-Wright
effect: diversity buys confidence, shared underpinnings erode the gain.

Run:  python examples/multi_legged_case.py
"""

import numpy as np

from repro.arguments import (
    ArgumentLeg,
    diversity_gain,
    single_leg_posterior,
    two_leg_graph,
)
from repro.viz import format_table, line_chart


def main() -> None:
    testing = ArgumentLeg(
        name="statistical testing",
        assumption_validity=0.90,   # test profile matches operation
        sensitivity=0.95,           # a good system almost always passes
        specificity=0.90,           # a bad one usually fails the campaign
    )
    analysis = ArgumentLeg(
        name="static analysis",
        assumption_validity=0.85,   # the formal model matches the code
        sensitivity=0.92,
        specificity=0.85,
    )
    prior = 0.60  # before either leg, the claim is more likely than not

    # --- The argument's structure. ---------------------------------------
    graph = two_leg_graph(
        "pfd of the protection function is below 1e-3",
        1e-3,
        testing,
        analysis,
        context_text="demand-mode operation, pressurised-water reactor",
    )
    print(graph.render())
    print()

    # --- One leg alone. ---------------------------------------------------
    one_leg = single_leg_posterior(prior, testing)
    print(f"P(claim) prior                    = {prior:.2%}")
    print(f"P(claim | testing leg passed)     = {one_leg:.2%}")
    print()

    # --- Two legs, dependence swept. ---------------------------------------
    dependences = [round(d, 1) for d in np.linspace(0.0, 1.0, 11)]
    results = diversity_gain(prior, testing, analysis, dependences)
    rows = [
        [r.dependence, f"{r.both_legs:.4f}", f"{r.gain:.4f}",
         f"{r.doubt_reduction_factor:.2f}x"]
        for r in results
    ]
    print(format_table(
        ["assumption dependence", "P(claim | both legs)", "gain over 1 leg",
         "doubt shrink"],
        rows,
    ))
    print()
    print(line_chart(
        dependences,
        [[r.both_legs for r in results], [r.single_leg for r in results]],
        labels=["two legs", "one leg"],
        title="Two-leg confidence vs dependence between the legs' assumptions",
        x_label="dependence",
        y_label="P(claim | evidence)",
        height=14,
    ))


if __name__ == "__main__":
    main()
