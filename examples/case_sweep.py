"""Whole-case scenario sweeps — quantify an assembled argument, then
stress every dial at once.

The paper's central object is the assembled dependability case: node
confidences combining (with dependence) into a top-goal claim.  This
example takes the quantified two-leg protection-system case from
``examples/case_confidence.yaml`` and walks three steps:

1. evaluate the case once (the per-node recursive oracle);
2. sweep assumption doubt x leg dependence in one vectorised pass
   through the compiled case engine (``case_confidence`` pipeline);
3. find the frontier: the assumption confidence needed to keep the
   top-goal confidence above a target as dependence grows.

Run with::

    PYTHONPATH=src python examples/case_sweep.py

The same case drives the command line::

    PYTHONPATH=src python -m repro.cli case \
        --case examples/case_confidence.yaml --set A1.p_true=0.8
"""

import pathlib

from repro.arguments import compile_case, load_case
from repro.engine import SweepSpec, run_sweep

CASE_FILE = pathlib.Path(__file__).resolve().parent / "case_confidence.yaml"

# ---------------------------------------------------------------- #
# 1. One evaluation: the case as written.
# ---------------------------------------------------------------- #
case = load_case(CASE_FILE)
values = case.evaluate()
root = case.graph.root_goal().identifier
print(f"case {case.name!r}: {len(case.graph)} nodes, "
      f"{len(case.parameter_defaults())} sweepable parameters")
print(f"top-goal confidence P({root}) = {values[root]:.4f}\n")

# ---------------------------------------------------------------- #
# 2. Sweep assumption doubt x leg dependence: 11 x 11 scenarios in
#    one vectorised pass (the case is compiled once and reused).
# ---------------------------------------------------------------- #
sweep = SweepSpec(
    pipeline="case_confidence",
    base={"case_file": str(CASE_FILE)},
    grid={
        "A1.p_true": [round(0.5 + 0.05 * i, 2) for i in range(11)],
        "S1.dependence": [round(0.1 * i, 1) for i in range(11)],
    },
)
results = run_sweep(sweep, backend="vectorized")
print(results.to_table(limit=8))
print(f"... {len(results)} scenarios, "
      f"backend {results.meta['backend']}, "
      f"{results.meta['elapsed_s'] * 1e3:.1f} ms\n")

# ---------------------------------------------------------------- #
# 3. The frontier: how much assumption confidence buys the claim back
#    as the legs' underpinnings become shared.
# ---------------------------------------------------------------- #
TARGET = 0.95
compiled = compile_case(case)
print(f"assumption confidence needed for P({root}) >= {TARGET}:")
for dependence in (0.0, 0.3, 0.6, 0.9):
    needed = None
    for p_true in [0.5 + 0.01 * i for i in range(51)]:
        top = compiled.top_confidence_sweep(
            {"A1.p_true": p_true, "S1.dependence": dependence}, 1
        )[0]
        if top >= TARGET:
            needed = p_true
            break
    label = f"{needed:.2f}" if needed is not None else "unreachable"
    print(f"  dependence {dependence:.1f} -> P(A1) >= {label}")
