"""Scenario sweeps with ``repro.engine`` — from one scenario to a family.

The paper's claims are about *families* of scenarios; this example walks
the three steps the engine is built around:

1. one scenario, run declaratively;
2. a sweep over (sigma, demands), executed in a single vectorised pass
   with a result cache;
3. tabular export — text table and CSV — plus the equivalent CLI call.

Run with::

    PYTHONPATH=src python examples/scenario_sweep.py

The same sweep is available to the command line as
``examples/sweep_spec.yaml``::

    PYTHONPATH=src python -m repro.cli sweep \
        --spec examples/sweep_spec.yaml --csv sweep.csv --limit 10
"""

from repro.engine import ResultCache, ScenarioSpec, SweepSpec, run_scenario, run_sweep

# ---------------------------------------------------------------- #
# 1. A single scenario: the paper's anchor judgement after 1,000
#    failure-free demands.
# ---------------------------------------------------------------- #
scenario = ScenarioSpec(
    pipeline="survival_update",
    params={"mode": 0.003, "sigma": 0.9, "demands": 1000, "bound": 1e-2},
)
single = run_scenario(scenario)
print("single scenario:", {k: round(v, 6) for k, v in single.values.items()})

# ---------------------------------------------------------------- #
# 2. The same computation as a family: 4 spreads x 5 test volumes,
#    evaluated as one batched NumPy pass.
# ---------------------------------------------------------------- #
sweep = SweepSpec(
    pipeline="survival_update",
    base={"mode": 0.003, "bound": 1e-2},
    grid={
        "sigma": [0.7, 0.9, 1.1, 1.3],
        "demands": [0, 10, 100, 1000, 10000],
    },
)
cache = ResultCache()
results = run_sweep(sweep, cache=cache)
print("\nfirst run:  ", results.summary())

# A repeated run is served from the cache.
results = run_sweep(sweep, cache=cache)
print("second run: ", results.summary())

# ---------------------------------------------------------------- #
# 3. Tabular export.
# ---------------------------------------------------------------- #
print("\n" + results.to_table(
    columns=["sigma", "demands", "mean", "confidence"], limit=8))
print("...")

best = results.best("confidence")
print(
    f"\nbest confidence {best.values['confidence']:.4f} at "
    f"sigma={best.spec.params['sigma']}, demands={best.spec.params['demands']}"
)

csv_text = results.to_csv()
print(f"\nCSV export: {len(csv_text.splitlines()) - 1} rows "
      f"(results.to_csv('sweep.csv') writes a file)")
