"""Simulating the paper's 12-expert elicitation experiment (Figure 5).

Runs the four-phase protocol (presentation -> individual information ->
group presentation -> Delphi) on a synthetic panel of 12 experts, 3 of
them "doubters", against the synthetic CEMSIS-style case study.  Shows
the paper's headline: the main group ends ~90 % confident of SIL 2 while
its pooled mean pfd sits on the SIL 2/1 boundary.

Run:  python examples/expert_elicitation.py
"""

from repro.elicitation import linear_pool
from repro.experiment import public_domain_case_study, run_panel
from repro.viz import format_table


def main() -> None:
    case = public_domain_case_study()
    print(case.briefing())
    print()

    result = run_panel(case, n_experts=12, n_doubters=3, seed=2007)

    # --- Per-expert final judgements (the Figure 5 scatter). -------------
    rows = []
    for name, is_doubter, mode, mean, confidence in result.per_expert_final():
        rows.append([
            name,
            "doubter" if is_doubter else "main",
            mode,
            mean,
            f"{confidence:.1%}",
        ])
    print(format_table(
        ["expert", "group", "mode pfd", "mean pfd", "P(SIL2 or better)"],
        rows,
    ))
    print()

    # --- The headline numbers. -------------------------------------------
    print(
        f"main group pooled confidence in SIL {case.target_level} or "
        f"better: {result.group_confidence_in_target():.1%}"
    )
    print(
        f"main group pooled mean pfd: {result.group_mean_pfd():.4g} "
        f"(SIL 2/1 boundary is {case.target_band.upper:g}; on boundary: "
        f"{result.mean_on_boundary()})"
    )
    print(
        f"whole-panel pooled mean pfd (doubters included): "
        f"{result.pooled_mean_pfd():.4g}"
    )
    print()

    # --- Convergence across phases. ---------------------------------------
    rows = []
    for phase_index, phase_name in enumerate(result.panel.phase_names, 1):
        main = [j.judgement for j in result.panel.main_group(phase_index)]
        pooled = linear_pool(main)
        rows.append([
            phase_index,
            phase_name,
            pooled.mean(),
            f"{case.target_band.confidence_better(pooled):.1%}",
        ])
    print(format_table(
        ["phase", "name", "pooled mean pfd", "P(SIL2+)"],
        rows,
    ))


if __name__ == "__main__":
    main()
