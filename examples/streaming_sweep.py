"""Streaming sweeps — million-scenario families in constant memory.

``run_sweep`` collects every result in memory; fine for thousands of
scenarios, fatal for millions.  The streaming executor runs the *same*
execution core chunk by chunk through pluggable sinks, so the working
set is one chunk no matter how large the sweep.  This example walks the
staged architecture:

1. **plan** — lower a sweep to its :class:`ExecutionPlan` IR and look at
   the chunk layout;
2. **execute** — stream 100,000 whole-case scenarios to a JSONL file
   with progress reporting, in constant memory;
3. **cache** — rerun against a disk-persistent :class:`ResultCache` and
   watch the second pass be pure cache hits.

Run with::

    PYTHONPATH=src python examples/streaming_sweep.py

The CLI equivalent::

    PYTHONPATH=src python -m repro.cli sweep \
        --spec examples/sweep_spec.yaml --stream --out rows.jsonl \
        --progress --cache results_cache.jsonl
    PYTHONPATH=src python -m repro.cli cache stats --path results_cache.jsonl
"""

import pathlib
import sys
import tempfile

from repro.engine import (
    JsonlSink,
    ResultCache,
    SweepSpec,
    lower,
    run_sweep_streaming,
)

case_file = str(pathlib.Path(__file__).parent / "case_confidence.yaml")
workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_stream_"))

# ---------------------------------------------------------------- #
# 1. Plan: 100 assumption confidences x 1,000 dependence values over
#    the example safety case = 100,000 scenarios, lowered to an IR
#    whose size is independent of the scenario count.
# ---------------------------------------------------------------- #
sweep = SweepSpec(
    pipeline="case_confidence",
    base={"case_file": case_file},
    grid={
        "A1.p_true": [round(0.5 + 0.005 * i, 3) for i in range(100)],
        "S1.dependence": [round(0.001 * i, 3) for i in range(1000)],
    },
)
plan = lower(sweep, chunk_size=16384)
print(f"plan: {plan!r}")
print(f"first chunk covers scenarios [{plan.chunk(0).start}, "
      f"{plan.chunk(0).stop})")

# ---------------------------------------------------------------- #
# 2. Execute: stream every scenario through a JSONL sink.  Peak
#    memory is one chunk; the rows land on disk as they finish.
# ---------------------------------------------------------------- #
rows_path = workdir / "case_rows.jsonl"
cache = ResultCache(path=str(workdir / "results_cache.jsonl"))


def progress(done_chunks, n_chunks, done_rows, n_rows):
    print(f"  chunk {done_chunks}/{n_chunks} "
          f"({done_rows}/{n_rows} scenarios)", file=sys.stderr)


meta = run_sweep_streaming(
    plan, sinks=(JsonlSink(str(rows_path)),), cache=cache,
    progress=progress,
)
print(f"streamed {meta['rows']} rows in {meta['elapsed_s']:.2f}s "
      f"({meta['n_chunks']} chunks) -> {rows_path}")

# ---------------------------------------------------------------- #
# 3. Cache: the same sweep again — every scenario is now a disk-backed
#    cache hit, and a *new* process reading the same cache path would
#    see the same hits (try rerunning this script with workdir fixed).
# ---------------------------------------------------------------- #
again = run_sweep_streaming(
    plan, sinks=(JsonlSink(str(workdir / "case_rows_2.jsonl")),),
    cache=cache,
)
print(f"rerun: cache {again['cache_hits']} hit / "
      f"{again['cache_misses']} miss in {again['elapsed_s']:.2f}s")
