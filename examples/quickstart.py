"""Quickstart: judge a system, quantify confidence, see the paper's effect.

Builds the paper's running example — a log-normal judgement with its mode
(most likely pfd) at 0.003, the middle of SIL 2 — and shows how spread
(lack of confidence) drags the risk-relevant *mean* into SIL 1, why the
~67 % confidence threshold matters, and what the conservative worst-case
calculus demands of a claim.

Run:  python examples/quickstart.py
"""

from repro import (
    ConfidenceProfile,
    LogNormalJudgement,
    SinglePointBelief,
    assess,
    design_for_claim,
    worst_case_failure_probability,
)
from repro.core import lognormal_confidence_crossover
from repro.sil import LOW_DEMAND


def main() -> None:
    # An assessor judges the most likely pfd to be 0.003 (mid SIL 2) but
    # holds that judgement with a broad spread (sigma ~ 0.9).
    judgement = LogNormalJudgement.from_mode_sigma(mode=0.003, sigma=0.9)
    print("The judgement:", judgement)
    print()

    # Mode says SIL 2; the mean — the probability of failure on a random
    # demand, which is what risk cares about — says SIL 1.
    report = assess(judgement, required_confidence=0.70)
    print(report.summary())
    print(f"mode is {report.optimistic_gap} level(s) more optimistic "
          f"than the mean")
    print()

    # Confidence profile: one-sided confidence in each SIL-or-better.
    profile = ConfidenceProfile(judgement)
    for level, confidence in profile.band_confidences():
        print(f"  P(SIL {level} or better) = {confidence:.2%}")
    print()

    # The paper's Figure 3 threshold: below ~67% confidence in SIL 2, the
    # mean is already in SIL 1.
    crossover = lognormal_confidence_crossover(0.003, LOW_DEMAND.band(2))
    print(
        f"Crossover (mode 0.003): at sigma = {crossover.spread:.3f} the "
        f"mean reaches {crossover.mean:.3g} with confidence "
        f"{crossover.confidence:.1%} in SIL 2"
    )
    print()

    # The conservative calculus (Section 3.4): to claim pfd < 1e-3 on a
    # random demand with a one-decade margin, the expert needs 99.91%
    # confidence in pfd < 1e-4.
    design = design_for_claim(1e-3, margin_decades=1)
    print(design.describe())

    # And an explicitly stated belief is easy to check:
    belief = SinglePointBelief(bound=1e-4, confidence=0.999)
    print(
        f"stated {belief}: worst-case P(failure) = "
        f"{worst_case_failure_probability(belief):.6g}"
    )


if __name__ == "__main__":
    main()
