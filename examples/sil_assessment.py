"""A full SIL assessment workflow for a protection system.

Scenario: a reactor-protection software function needs a SIL 2 claim.
The assessor elicits quantile fragments from the lead reviewer, fits a
judgement distribution, checks it against IEC 61508's confidence clauses,
applies argument-rigour discounting (Def Stan 00-56 style), and prices the
statistical testing needed to close the confidence gap.

Run:  python examples/sil_assessment.py
"""

from repro.core import AcarpTarget, DependabilityCase, EvidenceRecord, SilClaim
from repro.core.case import AssumptionRecord
from repro.distributions import QuantileConstraint, fit_lognormal
from repro.risk import plan_assurance
from repro.sil import ArgumentRigour, assess, claimable_level
from repro.standards import granted_sil, recommended_policy
from repro.viz import format_table


def main() -> None:
    # --- Elicitation: the reviewer will state three quantiles. ----------
    constraints = [
        QuantileConstraint(level=0.50, value=3e-3),
        QuantileConstraint(level=0.90, value=2e-2),
        QuantileConstraint(level=0.99, value=1e-1),
    ]
    judgement = fit_lognormal(constraints)
    print("Fitted judgement:", judgement)
    print()

    # --- Classification: mode vs mean vs confidence views. --------------
    print(assess(judgement, required_confidence=0.70).summary())
    print()

    # --- Standards clauses: what each IEC 61508 clause would grant. -----
    rows = []
    for key in (
        "part2-7.4.7.9",
        "part2-tableB6-low",
        "part2-tableB6-high",
    ):
        rows.append([key, granted_sil(judgement, key)])
    print(format_table(["IEC 61508 clause", "granted SIL"], rows))
    print()

    # --- Rigour discounting: the same evidence argued different ways. ---
    rows = []
    for rigour in ArgumentRigour.ALL:
        policy = recommended_policy(rigour, required_confidence=0.90)
        rows.append([rigour, str(claimable_level(judgement, policy))])
    print(format_table(["argument rigour", "claimable SIL @90%"], rows))
    print()

    # --- Case assembly. --------------------------------------------------
    case = DependabilityCase(
        system="reactor protection channel B",
        claim=SilClaim(level=2),
        judgement=judgement,
        evidence=[
            EvidenceRecord("factory acceptance tests", "testing",
                           "4,612 simulated demands, no dangerous failure"),
            EvidenceRecord("MISRA static analysis", "analysis",
                           "no category-1 violations outstanding"),
        ],
        assumptions=[
            AssumptionRecord("test demands match the operational profile",
                             probability_true=0.95),
            AssumptionRecord("compiler introduces no dangerous defect",
                             probability_true=0.99),
        ],
    )
    print(case.report())
    print()

    # --- Closing the gap: price the extra statistical testing. ----------
    target = AcarpTarget(claim_bound=1e-2, required_confidence=0.95)
    plan = plan_assurance(
        judgement, target, cost_per_test=250.0,
        benefit_of_meeting_target=2_000_000.0,
    )
    print("Assurance plan:", plan.describe())


if __name__ == "__main__":
    main()
