"""Measured autotuning — tune once, then run a million scenarios tuned.

The engine's execution knobs (backend, chunk size, parameter-plane
dtype) ship with fixed defaults, but the fastest setting depends on the
machine and the pipeline.  ``repro.tuning`` measures instead of
guessing.  This example:

1. **tune** — measure a backend x chunk-size x dtype grid for the
   survival-update pipeline on a trimmed measurement budget and print
   every configuration's throughput (the fixed-defaults configuration
   is always in the grid, so the winner can't lose to it);
2. **persist** — write the winning profile to a JSON tuning file and
   read it back, exactly what ``repro-case tune`` does;
3. **run tuned** — install the profile and stream a million-scenario
   sweep: ``lower()`` picks up the measured chunk size and dtype, and
   ``backend="auto"`` resolves to the measured winner.

Run with::

    PYTHONPATH=src python examples/autotune.py

The CLI equivalent::

    PYTHONPATH=src python -m repro.cli tune \
        --spec examples/sweep_spec.yaml --out tuning.json
    PYTHONPATH=src python -m repro.cli sweep \
        --spec examples/sweep_spec.yaml --tuned tuning.json \
        --stream --out rows.jsonl
"""

import pathlib
import tempfile

from repro.engine import JsonlSink, SweepSpec, run_sweep_streaming
from repro.tuning import autotune, load_profile, set_active_profile

workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_tune_"))

# ---------------------------------------------------------------- #
# 1. Tune: measure the grid on a trimmed budget (4,096 scenarios per
#    configuration by default — the sweep is decoded lazily, so the
#    measurement prefix is exactly what the full sweep would run).
# ---------------------------------------------------------------- #
sweep = SweepSpec(
    pipeline="survival_update",
    # 60 grid points per decade keeps each scenario light enough that a
    # million of them stream in well under a minute on the winner.
    base={"mode": 0.003, "sigma": 0.9, "bound": 1e-2,
          "points_per_decade": 60},
    grid={
        "demands": list(range(0, 2000, 2)),          # 1,000 values
        "sigma": [round(0.5 + 0.001 * i, 3) for i in range(1000)],
    },
)
print(f"tuning on {sweep.n_scenarios():,} scenarios "
      "(trimmed to the measurement budget)...")

profile = autotune(
    sweep,
    backends=("vectorized", "thread"),
    chunk_sizes=(1024, 8192, 16384),
    dtypes=("float64", "float32"),
    repeats=2,
)
entry = profile.entry("survival_update")
print("\nmeasured grid (best of 3 per configuration):")
for point in sorted(entry.grid, key=lambda p: -p["rows_per_s"]):
    marker = " (default)" if point["default"] else ""
    print(f"  {point['backend']:>10} chunk={point['chunk_size']:<6}"
          f" {point['dtype']:<8} {point['rows_per_s']:>12,.0f} rows/s"
          f"{marker}")
print(f"\nwinner: backend={entry.backend}, chunk_size={entry.chunk_size}, "
      f"dtype={entry.dtype} ({entry.rows_per_s:,.0f} rows/s)")

# ---------------------------------------------------------------- #
# 2. Persist: the profile round-trips through a plain JSON file —
#    winners plus the full measurement evidence.
# ---------------------------------------------------------------- #
tuning_path = workdir / "tuning.json"
profile.save(tuning_path)
print(f"\nprofile saved to {tuning_path}")

# ---------------------------------------------------------------- #
# 3. Run tuned: with the profile active, the streaming executor uses
#    the measured backend/chunk-size/dtype for the full sweep.
# ---------------------------------------------------------------- #
set_active_profile(load_profile(tuning_path))
rows_path = workdir / "rows.jsonl"
meta = run_sweep_streaming(sweep, sinks=(JsonlSink(rows_path),))
print(f"\ntuned run: {meta['rows']:,} rows in {meta['elapsed_s']:.1f}s "
      f"({meta['rows'] / meta['elapsed_s']:,.0f} rows/s)")
print(f"backend={meta['backend']}, chunk_size={meta['chunk_size']}, "
      f"dtype={meta['dtype']}, tuned={meta['tuned']}")
stages = meta["stage_timings"]
print("stages: " + ", ".join(
    f"{name.removesuffix('_s')} {value:.2f}s"
    for name, value in stages.items()
))
set_active_profile(None)
